"""The Mobile Policy Table (Section 3.3) and routing modes (Section 3.2).

A mobile host away from home must make three decisions per packet:

1. send directly or tunnel through the home agent,
2. if direct, whether to encapsulate,
3. use the home address or the local (care-of) address as source.

The four consistent combinations are the paper's routing options, encoded
here as :class:`RoutingMode`:

===============  =========  ======  ==============  =======================
mode             route      encap   source address  paper reference
===============  =========  ======  ==============  =======================
TUNNEL           via HA     yes     home            basic protocol (§3.1)
TRIANGLE         direct     no      home            triangle route (§3.2)
ENCAP_DIRECT     direct     yes     care-of outer   transit-filter variant
LOCAL            direct     no      care-of         local role (§5.2)
===============  =========  ======  ==============  =======================

The table maps destination prefixes to modes, with a configurable default.
"We do not yet update the table dynamically" says the paper of its own
implementation, but describes the intended mechanism — cache a fallback to
TUNNEL when a triangle-routed probe (ping) fails.  :meth:`record_probe_result`
implements that intended behaviour; experiments exercise it against a
transit-filtering router.
"""

from __future__ import annotations

import enum
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.net.addressing import IPAddress, Subnet
from repro.obs.capture import note_policy_table
from repro.obs.metrics import MetricsRegistry


class RoutingMode(enum.Enum):
    """How the mobile host sends one packet (the three §3.2 decisions)."""

    TUNNEL = "tunnel"              # via HA, encapsulated, home source
    TRIANGLE = "triangle"          # direct, plain, home source
    ENCAP_DIRECT = "encap-direct"  # direct, encapsulated, care-of outer
    LOCAL = "local"                # direct, plain, care-of source

    @property
    def uses_home_source(self) -> bool:
        """Whether packets carry the home address as source."""
        return self in (RoutingMode.TUNNEL, RoutingMode.TRIANGLE,
                        RoutingMode.ENCAP_DIRECT)

    @property
    def encapsulates(self) -> bool:
        """Whether the mode wraps packets in IP-in-IP."""
        return self in (RoutingMode.TUNNEL, RoutingMode.ENCAP_DIRECT)

    @property
    def via_home_agent(self) -> bool:
        """Whether packets detour through the home agent."""
        return self is RoutingMode.TUNNEL

    @property
    def preserves_mobility(self) -> bool:
        """Whether correspondents keep seeing the home address."""
        return self.uses_home_source


@dataclass(frozen=True)
class PolicyEntry:
    """One row of the Mobile Policy Table."""

    destination: Subnet
    mode: RoutingMode
    #: Where the entry came from: "static" (operator), "probe" (dynamic
    #: fallback after a failed ping), "redirect", ...
    origin: str = "static"


class MobilePolicyTable:
    """Longest-prefix policy lookup, separate from the routing table.

    "To keep the implementation simple, we have separated out routing
    decisions and mobility decisions.  This allows us to leave the routing
    tables unchanged and merely add our Mobile Policy Table for IP's use."
    """

    def __init__(self, *_shim: RoutingMode,
                 default_mode: Optional[RoutingMode] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 owner: str = "",
                 cache_size: int = 128) -> None:
        if _shim:
            warnings.warn(
                "passing default_mode positionally to MobilePolicyTable is "
                "deprecated; use MobilePolicyTable(default_mode=...)",
                DeprecationWarning, stacklevel=2)
            if default_mode is None:
                default_mode = _shim[0]
        self._default_mode = default_mode if default_mode is not None \
            else RoutingMode.TUNNEL
        self._entries: List[PolicyEntry] = []
        # Per-destination LRU memo of (entry, mode): one linear LPM scan per
        # distinct destination between invalidations.  Any table mutation —
        # set_policy, clear_policy, probe results, default-mode changes,
        # handoffs — clears it wholesale; correctness never depends on it.
        self._cache_size = cache_size
        self._cache: "OrderedDict[IPAddress, Tuple[Optional[PolicyEntry], RoutingMode]]" = OrderedDict()
        # One-entry inline cache in front of the LRU: a burst of packets to
        # one correspondent repeats the same policy lookup, and a single
        # address comparison beats the OrderedDict probe.  A hot hit records
        # exactly the counters an LRU hit would; every invalidation clears
        # it together with the LRU.
        self._hot_dst: Optional[IPAddress] = None
        self._hot_cached: Optional[Tuple[Optional[PolicyEntry], RoutingMode]] = None
        # A table built without a registry (bare tables in tests) records
        # into a private one, keeping the lookup path branch-free.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._owner = owner
        self._lookup_counters = {
            (mode, result): self._metrics.counter(
                "policy", "lookups", host=owner, mode=mode.value,
                result=result)
            for mode in RoutingMode for result in ("hit", "miss")
        }
        self._probe_fallback_counter = self._metrics.counter(
            "policy", "probe_fallbacks", host=owner)
        # Cache diagnostics.  These are perf-observability counters, not
        # simulation results: the determinism guard (repro.bench.guard)
        # strips ``policy/lookup_cache`` before comparing snapshots, since
        # hit/miss splits legitimately differ with cache configuration.
        self._cache_hit_counter = self._metrics.counter(
            "policy", "lookup_cache", host=owner, result="hit")
        self._cache_miss_counter = self._metrics.counter(
            "policy", "lookup_cache", host=owner, result="miss")
        note_policy_table(self)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def default_mode(self) -> RoutingMode:
        """Mode used when no entry matches (cached lookups track changes)."""
        return self._default_mode

    @default_mode.setter
    def default_mode(self, mode: RoutingMode) -> None:
        self._default_mode = mode
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every memoized lookup (any mutation calls this)."""
        self._cache.clear()
        self._hot_dst = None
        self._hot_cached = None

    def set_policy(self, destination: Union[Subnet, IPAddress],
                   mode: RoutingMode, origin: str = "static") -> PolicyEntry:
        """Install (or replace) the policy for a prefix or single host."""
        prefix = destination if isinstance(destination, Subnet) \
            else Subnet(destination, 32)
        self._entries = [entry for entry in self._entries
                         if entry.destination != prefix]
        entry = PolicyEntry(destination=prefix, mode=mode, origin=origin)
        self._entries.append(entry)
        self.invalidate_cache()
        return entry

    def clear_policy(self, destination: Union[Subnet, IPAddress]) -> None:
        """Remove the entry for a prefix or host, if present."""
        prefix = destination if isinstance(destination, Subnet) \
            else Subnet(destination, 32)
        self._entries = [entry for entry in self._entries
                         if entry.destination != prefix]
        self.invalidate_cache()

    def lookup_entry(self, dst: IPAddress) -> Optional[PolicyEntry]:
        """The most specific entry covering *dst*, if any."""
        best: Optional[PolicyEntry] = None
        for entry in self._entries:
            if dst not in entry.destination:
                continue
            if best is None or entry.destination.prefix_len > best.destination.prefix_len:
                best = entry
        return best

    def lookup(self, dst: IPAddress) -> RoutingMode:
        """The routing mode for *dst* (default when no entry matches).

        Results are memoized per destination; a cache hit records exactly
        the same ``policy/lookups`` counter increment the scan would have,
        so the metrics snapshot is identical with the cache on or off
        (only the diagnostic ``policy/lookup_cache`` counters differ).
        """
        if dst == self._hot_dst:
            entry, mode = self._hot_cached
            self._cache_hit_counter.value += 1
            if entry is not None:
                self._lookup_counters[(mode, "hit")].value += 1
            else:
                self._lookup_counters[(mode, "miss")].value += 1
            return mode
        cache = self._cache
        cached = cache.get(dst)
        if cached is not None:
            cache.move_to_end(dst)
            self._hot_dst = dst
            self._hot_cached = cached
            self._cache_hit_counter.value += 1
            entry, mode = cached
            if entry is not None:
                self._lookup_counters[(mode, "hit")].value += 1
            else:
                self._lookup_counters[(mode, "miss")].value += 1
            return mode
        self._cache_miss_counter.value += 1
        entry = self.lookup_entry(dst)
        if entry is not None:
            mode = entry.mode
            self._lookup_counters[(mode, "hit")].value += 1
        else:
            mode = self._default_mode
            self._lookup_counters[(mode, "miss")].value += 1
        if self._cache_size > 0:
            cache[dst] = (entry, mode)
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
            self._hot_dst = dst
            self._hot_cached = (entry, mode)
        return mode

    # --------------------------------------------------------- dynamic updates

    def record_probe_result(self, dst: IPAddress, reachable: bool) -> None:
        """Cache the outcome of a reachability probe for *dst*.

        A failed probe under a direct mode means the foreign network drops
        transit traffic: fall back to the always-working tunnel, per-host.
        A successful probe removes a previous dynamic fallback.
        """
        entry = self.lookup_entry(dst)
        self.invalidate_cache()
        if not reachable:
            self._probe_fallback_counter.value += 1
            self.set_policy(dst, RoutingMode.TUNNEL, origin="probe")
            return
        if entry is not None and entry.origin == "probe" \
                and entry.destination == Subnet(dst, 32):
            self.clear_policy(dst)

    # ------------------------------------------------------------- inspection

    def snapshot(self) -> Dict[str, Any]:
        """Structured dump: default mode plus every entry with its origin.

        Entries are sorted most-specific-first (the lookup's preference
        order), so the dump reads as the table's decision sequence.  The
        observability exporter renders this in its human-readable report.
        """
        return {
            "owner": self._owner,
            "default_mode": self._default_mode.value,
            "entries": [
                {
                    "destination": str(entry.destination),
                    "mode": entry.mode.value,
                    "origin": entry.origin,
                }
                for entry in sorted(
                    self._entries,
                    key=lambda e: (-e.destination.prefix_len,
                                   e.destination.network.value))
            ],
        }

    def describe(self) -> str:
        """Dump for examples/debugging, one entry per line."""
        lines = [f"default: {self.default_mode.value}"]
        for entry in sorted(self._entries,
                            key=lambda e: (-e.destination.prefix_len,
                                           e.destination.network.value)):
            lines.append(f"{entry.destination} -> {entry.mode.value} "
                         f"({entry.origin})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        owner = f" owner={self._owner!r}" if self._owner else ""
        body = "; ".join(
            f"{entry.destination}->{entry.mode.value}({entry.origin})"
            for entry in self._entries)
        return (f"<MobilePolicyTable{owner} "
                f"default={self._default_mode.value}"
                f"{' ' + body if body else ''}>")
