"""An IETF-style foreign agent: the baseline MosquitoNet leaves out.

Section 2 describes the minimal foreign agent of the IETF draft: it must
"relay registration requests (change-of-location notifications) from the
mobile host to its home agent and decapsulate packets for delivery to the
mobile host".  This module implements that baseline so the reproduction
can compare both architectures (ablation A1 in DESIGN.md):

* **Registration relay** — the visiting mobile host sends its request to
  the FA; the FA forwards it to the home agent with the FA's own address
  as care-of, and relays the reply back on-link.
* **Decapsulation + on-link delivery** — packets tunneled from the home
  agent to the FA's address are decapsulated and handed to the visitor on
  the local network (the visitor keeps its home address as its only
  address; the FA holds a host route for it).
* **Smooth handoff** (Section 5.1's packet-loss point) — "if a foreign
  agent in the old network receives the new registration before the
  packets arrive, it can forward the packets to the mobile host's new
  care-of address."  :meth:`notify_departure` installs exactly that
  forwarding state for a grace period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.registration import (
    REGISTRATION_PORT,
    RegistrationReply,
    RegistrationRequest,
)
from repro.core.tunnel import VirtualInterface, install_tunnel
from repro.net.addressing import IPAddress
from repro.net.packet import AppData, IPPacket
from repro.net.routing import RouteEntry
from repro.sim.randomness import jittered
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

#: How long a departed visitor's forwarding state lives by default.
DEFAULT_FORWARDING_GRACE = ms(10_000)


@dataclass
class Visitor:
    """One mobile host currently (or recently) served by this FA."""

    home_address: IPAddress
    home_agent: IPAddress
    route: Optional[RouteEntry] = None
    departed: bool = False
    forward_to: Optional[IPAddress] = None


class ForeignAgentService:
    """The passive/minimal IETF foreign agent, attached to a host."""

    def __init__(self, host: "Host", interface: "NetworkInterface") -> None:
        self.host = host
        self.sim = host.sim
        self.config = host.config
        self.interface = interface
        if interface.address is None:
            raise ValueError(f"FA interface {interface.name} has no address")
        #: Visiting mobile hosts use this as their care-of address.
        self.care_of_address: IPAddress = interface.address
        self.vif: VirtualInterface = install_tunnel(host, name="vif.fa")
        self.vif.endpoint_selector = self._select_endpoints
        self._visitors: Dict[IPAddress, Visitor] = {}
        self._pending_relays: Dict[int, IPAddress] = {}
        self._rng = host.sim.rng(f"foreign-agent:{host.name}")
        self._socket = host.udp.open(REGISTRATION_PORT
                                     ).on_datagram(self._on_datagram)
        host.ip.forwarding = True
        # Statistics.
        self.requests_relayed = 0
        self.replies_relayed = 0
        self.packets_forwarded_after_departure = 0

    # -------------------------------------------------------------- inspection

    def visitor(self, home_address: IPAddress) -> Optional[Visitor]:
        """The visitor record for *home_address*, if any."""
        return self._visitors.get(home_address)

    def visitor_count(self) -> int:
        """Number of currently-served (not departed) visitors."""
        return sum(1 for visitor in self._visitors.values()
                   if not visitor.departed)

    # ---------------------------------------------------------- registration

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        message = data.content
        if isinstance(message, RegistrationRequest):
            self._relay_request(message)
        elif isinstance(message, RegistrationReply):
            self._relay_reply(message)

    def _relay_request(self, request: RegistrationRequest) -> None:
        """Forward a visitor's request to its home agent."""
        self.requests_relayed += 1
        self._pending_relays[request.identification] = request.home_address
        visitor = self._visitors.get(request.home_address)
        if visitor is None:
            visitor = Visitor(home_address=request.home_address,
                              home_agent=request.home_agent)
            self._visitors[request.home_address] = visitor
        self.sim.trace.emit("foreign_agent", "relay_request",
                            fa=self.host.name,
                            home_address=str(request.home_address))
        delay = jittered(self._rng, self.config.registration.ha_receive_overhead,
                         self.config.jitter)
        self.sim.call_later(
            delay,
            lambda: self._socket.sendto(request.wrap(), request.home_agent,
                                        REGISTRATION_PORT),
            label="fa-relay-request",
        )

    def _relay_reply(self, reply: RegistrationReply) -> None:
        """Forward the home agent's reply back to the visitor, on-link."""
        home_address = self._pending_relays.pop(reply.identification, None)
        if home_address is None:
            return
        visitor = self._visitors.get(home_address)
        if visitor is None:
            return
        self.replies_relayed += 1
        if reply.accepted and reply.lifetime > 0:
            self._confirm_visitor(visitor)
        elif reply.accepted and reply.lifetime == 0:
            self._drop_visitor(visitor)
        self.sim.trace.emit("foreign_agent", "relay_reply", fa=self.host.name,
                            home_address=str(home_address), code=reply.code)
        delay = jittered(self._rng, self.config.registration.ha_send_overhead,
                         self.config.jitter)
        self.sim.call_later(
            delay,
            lambda: self._socket.sendto(reply.wrap(), home_address,
                                        REGISTRATION_PORT, via=self.interface),
            label="fa-relay-reply",
        )

    def _confirm_visitor(self, visitor: Visitor) -> None:
        """Install on-link delivery for a confirmed visitor."""
        visitor.departed = False
        visitor.forward_to = None
        if visitor.route is not None:
            self.host.ip.routes.remove(visitor.route)
        visitor.route = self.host.ip.routes.add_host_route(
            visitor.home_address, self.interface)

    def _drop_visitor(self, visitor: Visitor) -> None:
        if visitor.route is not None:
            self.host.ip.routes.remove(visitor.route)
            visitor.route = None
        self._visitors.pop(visitor.home_address, None)

    # ------------------------------------------------------------- departures

    def notify_departure(self, home_address: IPAddress,
                         new_care_of: Optional[IPAddress],
                         grace: int = DEFAULT_FORWARDING_GRACE) -> None:
        """The visitor moved on; forward in-flight tunnels if possible.

        With *new_care_of* given, packets the home agent tunneled here
        before seeing the new registration are re-encapsulated to the new
        location for *grace* nanoseconds (the paper's smooth-handoff
        benefit).  With ``None`` they are simply dropped, as in a
        plain minimal FA.
        """
        visitor = self._visitors.get(home_address)
        if visitor is None:
            return
        visitor.departed = True
        visitor.forward_to = new_care_of
        if visitor.route is not None:
            self.host.ip.routes.remove(visitor.route)
            visitor.route = None
        if new_care_of is not None:
            visitor.route = self.host.ip.routes.add_host_route(
                home_address, self.vif)
        self.sim.trace.emit("foreign_agent", "departure", fa=self.host.name,
                            home_address=str(home_address),
                            forward_to=str(new_care_of) if new_care_of else None)
        self.sim.call_later(grace,
                            lambda: self._end_grace(home_address),
                            label="fa-grace")

    def _end_grace(self, home_address: IPAddress) -> None:
        visitor = self._visitors.get(home_address)
        if visitor is None or not visitor.departed:
            return
        self._drop_visitor(visitor)

    # ---------------------------------------------------------------- tunneling

    def _select_endpoints(self, inner: IPPacket
                          ) -> Optional[Tuple[IPAddress, IPAddress]]:
        """Re-tunnel packets for departed visitors to their new care-of."""
        visitor = self._visitors.get(inner.dst)
        if visitor is None or not visitor.departed or visitor.forward_to is None:
            return None
        self.packets_forwarded_after_departure += 1
        self.sim.trace.emit("foreign_agent", "forwarded_after_departure",
                            fa=self.host.name, home_address=str(inner.dst),
                            to=str(visitor.forward_to))
        return (self.care_of_address, visitor.forward_to)
