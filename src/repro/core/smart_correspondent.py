"""Smart correspondent hosts: the reverse-path optimization (extension).

Section 3.2: "Some correspondent hosts may be mobile themselves or may run
mobile-aware software.  We call these *smart correspondent hosts*, and
we'd like to take advantage of them when possible."  The paper stops at
the forward path ("we do not consider routing optimizations for the
reverse path ... we have not yet implemented any of them.  These
optimizations require the correspondent host to be able to locate the
mobile host at its care-of address") — this module implements exactly that
deferred optimization:

* the mobile host sends its ordinary registration message to smart
  correspondents as a **binding update** (Section 5.1 already anticipates
  "the registration of the temporary care-of address with the home agent
  *and with smart correspondent hosts*", including its authentication);
* the smart correspondent keeps a binding cache and acknowledges updates,
  so the mobile host's existing retransmission machinery applies;
* a route hook + VIF on the correspondent tunnels packets for a cached
  home address straight to the care-of address, skipping the home agent.

Deregistrations (care-of == home) invalidate the cache entry, and entries
expire with their lifetime, so a crashed correspondent cache degrades to
the always-correct basic protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.core.auth import RegistrationAuthenticator
from repro.core.bindings import MobilityBinding, MobilityBindingTable
from repro.core.registration import (
    CODE_ACCEPTED,
    REGISTRATION_PORT,
    RegistrationReply,
    RegistrationRequest,
)
from repro.core.tunnel import VirtualInterface, install_tunnel
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.packet import AppData, IPPacket
from repro.net.routing import RouteResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Denial code for unauthenticated binding updates (mirrors the HA's).
CODE_UPDATE_DENIED = 131


class SmartCorrespondent:
    """Mobile-awareness for a correspondent host.

    Attach to any :class:`~repro.net.host.Host`; from then on, packets the
    host sends to a mobile host with a fresh cached binding are tunneled
    directly to its care-of address.
    """

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        self.vif: VirtualInterface = install_tunnel(host, name="vif.sc")
        self.vif.endpoint_selector = self._select_endpoints
        self.bindings = MobilityBindingTable(host.sim)
        #: Optional authentication, same machinery as the home agent's.
        self.authenticator: Optional[RegistrationAuthenticator] = None
        if host.ip.route_hook is not None:
            raise ValueError(f"{host.name} already has a route hook")
        host.ip.route_hook = self._route_hook
        self._socket = host.udp.open(REGISTRATION_PORT
                                     ).on_datagram(self._on_datagram)
        # Statistics.
        self.updates_accepted = 0
        self.updates_rejected = 0
        self.packets_optimized = 0

    # -------------------------------------------------------------- inspection

    def cached_care_of(self, home_address: IPAddress) -> Optional[IPAddress]:
        """The cached care-of for *home_address*, or None."""
        binding = self.bindings.get(home_address)
        return binding.care_of_address if binding is not None else None

    # ---------------------------------------------------------- binding updates

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        update = data.content
        if not isinstance(update, RegistrationRequest):
            return
        if self.authenticator is not None and not self.authenticator.verify(update):
            self.updates_rejected += 1
            self.sim.trace.emit("smart_ch", "update_rejected",
                                host=self.host.name,
                                home_address=str(update.home_address))
            reply = RegistrationReply(code=CODE_UPDATE_DENIED,
                                      home_address=update.home_address,
                                      care_of_address=update.care_of_address,
                                      lifetime=0,
                                      identification=update.identification)
            self._socket.sendto(reply.wrap(), src, src_port)
            return
        if update.is_deregistration:
            self.bindings.deregister(update.home_address)
            self.sim.trace.emit("smart_ch", "binding_invalidated",
                                host=self.host.name,
                                home_address=str(update.home_address))
        else:
            self.bindings.register(update.home_address,
                                   update.care_of_address, update.lifetime,
                                   update.identification)
            self.sim.trace.emit("smart_ch", "binding_cached",
                                host=self.host.name,
                                home_address=str(update.home_address),
                                care_of=str(update.care_of_address))
        self.updates_accepted += 1
        reply = RegistrationReply(code=CODE_ACCEPTED,
                                  home_address=update.home_address,
                                  care_of_address=update.care_of_address,
                                  lifetime=update.lifetime,
                                  identification=update.identification)
        self._socket.sendto(reply.wrap(), src, src_port)

    # ------------------------------------------------------------------ routing

    def _route_hook(self, dst: IPAddress, src_hint: IPAddress,
                    default: Callable[[IPAddress, IPAddress], Optional[RouteResult]]
                    ) -> Optional[RouteResult]:
        binding = self.bindings.get(dst)
        if binding is None:
            return None
        base = default(dst, src_hint)
        source = src_hint
        if source.is_unspecified:
            source = base.source if base is not None else UNSPECIFIED
        if source.is_unspecified:
            return None  # can't address the tunnel; fall back to normal
        return RouteResult(interface=self.vif, source=source)

    def _select_endpoints(self, inner: IPPacket
                          ) -> Optional[Tuple[IPAddress, IPAddress]]:
        binding = self.bindings.get(inner.dst)
        if binding is None:
            return None
        self.packets_optimized += 1
        return (inner.src, binding.care_of_address)
