"""VIF and IP-in-IP: the encapsulation engine (Figure 4).

The paper adds "a virtual link-level interface, called VIF, to encapsulate
packets" plus an "IP-within-IP processing module (IPIP)", shaded as one
module in Figure 4 because they are implemented together.  This module is
that pair:

* :class:`VirtualInterface` — looks like any other interface to the routing
  table.  When IP routes a packet to it, the VIF wraps the packet in an
  outer header and *hands it back to IP*: "we can consider IP-within-IP to
  have delivered a new packet to IP, which treats the packet based on the
  same set of rules as before."
* :class:`IPIPModule` — the receive side: registered as the handler for IP
  protocol 4, strips the outer header and re-injects the inner packet.

The crucial invariant (Section 3.3): "to ensure the packet doesn't get
encapsulated again, VIF must set the source address in the outer header to
a specific physical interface."  The owner supplies an *endpoint selector*
that returns the outer (source, destination) pair; because the source it
returns is a physical interface's address, the mobile host's route hook
sees a bound source and routes the outer packet normally, never back into
the VIF.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.config import Config, DEFAULT_CONFIG
from repro.net.addressing import IPAddress
from repro.net.interface import InterfaceState, NetworkInterface
from repro.net.packet import PROTO_IPIP, IPPacket, encapsulate, encapsulation_depth
from repro.sim.arena import release
from repro.sim.engine import Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Returns (outer_src, outer_dst) for an inner packet, or None to drop.
#: The mobile host returns (care-of, home agent); the home agent returns
#: (its own address, the destination's registered care-of address).
EndpointSelector = Callable[[IPPacket], Optional[Tuple[IPAddress, IPAddress]]]


class TunnelError(RuntimeError):
    """Raised on tunnel misconfiguration (e.g. no endpoint selector)."""


class VirtualInterface(NetworkInterface):
    """The paper's ``vif``: an interface that encapsulates instead of sends."""

    def __init__(self, sim: Simulator, name: str, *_shim: Config,
                 config: Optional[Config] = None) -> None:
        if _shim:
            warnings.warn(
                "passing config positionally to VirtualInterface is "
                "deprecated; use VirtualInterface(sim, name, config=...)",
                DeprecationWarning, stacklevel=2)
            if config is None:
                config = _shim[0]
        if config is None:
            config = DEFAULT_CONFIG
        super().__init__(sim, name, config.virtual_device, config)
        self.state = InterfaceState.UP  # software-only; born up
        self.endpoint_selector: Optional[EndpointSelector] = None
        self._fifo = FifoDelay(sim)
        self.packets_encapsulated = 0
        self.packets_dropped_no_endpoint = 0
        self._encap_counter = sim.metrics.counter("tunnel", "encapsulated",
                                                  iface=name)
        self._overhead_counter = sim.metrics.counter(
            "tunnel", "overhead_bytes", iface=name)

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Encapsulate *packet* and hand the result back to IP."""
        if self.host is None:
            raise TunnelError(f"{self.name} is not attached to a host")
        if self.endpoint_selector is None:
            raise TunnelError(f"{self.name} has no endpoint selector")
        endpoints = self.endpoint_selector(packet)
        if endpoints is None:
            self.packets_dropped_no_endpoint += 1
            self.sim.trace.emit("tunnel", "no_endpoint", interface=self.name,
                                packet=packet.describe())
            return
        outer_src, outer_dst = endpoints
        if outer_src.is_unspecified:
            raise TunnelError(
                f"{self.name}: outer source must be a physical interface "
                "address (the paper's re-encapsulation guard)"
            )
        outer = encapsulate(packet, outer_src, outer_dst,
                            ttl=self.config.default_ttl)
        if encapsulation_depth(outer) > 1:
            # This should be unreachable; the invariant tests lean on it.
            raise TunnelError(f"{self.name}: double encapsulation of "
                              f"{packet.describe()}")
        self.packets_encapsulated += 1
        self._encap_counter.value += 1
        self._overhead_counter.value += outer.size_bytes - packet.size_bytes
        self.tx_packets += 1
        self.sim.trace.emit("tunnel", "encapsulated", interface=self.name,
                            outer=outer.describe())
        cost = jittered(self._rng, self.host.timings.tunnel_cost,
                        self.config.jitter)
        self._fifo.schedule(cost, lambda: self.host.ip.send(outer),
                            label=f"vif-encap:{self.name}")


class IPIPModule:
    """Receive-side decapsulation: the IPIP protocol handler.

    The same code runs on the mobile host (decapsulating packets tunneled
    from its home agent — the collocated foreign agent role) and on the
    home agent (decapsulating the mobile host's reverse-tunneled packets
    before forwarding them to correspondents).
    """

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        self._fifo = FifoDelay(host.sim)
        self.packets_decapsulated = 0
        self._decap_counter = host.sim.metrics.counter(
            "tunnel", "decapsulated", host=host.name)
        host.ip.register_protocol(PROTO_IPIP, self._receive)

    def _receive(self, outer: IPPacket, iface: NetworkInterface) -> None:
        inner = outer.inner
        self.sim.trace.emit("tunnel", "decapsulated", host=self.host.name,
                            inner=inner.describe())
        self.packets_decapsulated += 1
        self._decap_counter.value += 1
        cost = jittered(self.sim.rng(f"ipip:{self.host.name}"),
                        self.host.timings.tunnel_cost, self.host.config.jitter)
        # Re-inject: the inner packet "takes the reverse of the dotted path
        # shown in Figure 4" — it re-enters IP as if freshly received.  It
        # re-enters via the loopback, not the physical interface: the inner
        # packet did not arrive on that LAN, so link-scoped reactions to it
        # (notably ICMP redirects back at a reverse-tunneling mobile host —
        # the Section 5.2 hazard) must not fire.
        self._fifo.post(
            cost,
            lambda: self._reinject(inner, outer),
            label=f"ipip-decap:{self.host.name}")

    def _reinject(self, inner: IPPacket, outer: IPPacket) -> None:
        self.host.ip.receive_packet(inner, self.host.loopback)
        # The outer wrapper is dead once the inner packet has re-entered IP;
        # held=2 covers this frame's parameter plus the decap closure cell.
        release(outer, held=2)


def install_tunnel(host: "Host", name: str = "vif") -> VirtualInterface:
    """Create and attach a VIF + IPIP pair on *host* (one module, as in
    Figure 4), returning the VIF.

    Decapsulation is shared: a host running several mobility services
    (e.g. a router that is both home agent for one subnet and foreign agent
    for another) still has exactly one IPIP protocol handler.
    """
    vif = VirtualInterface(host.sim, f"{name}.{host.name}", config=host.config)
    host.add_interface(vif)
    if getattr(host, "ipip", None) is None:
        host.ipip = IPIPModule(host)  # type: ignore[attr-defined]
    return vif
