"""Registration authentication (the paper's named-but-unimplemented need).

Section 5.1: "The only security problem that is truly unique to mobile
hosts is the registration of the temporary care-of address with the home
agent and with smart correspondent hosts.  These registrations should be
authenticated with S-key, Kerberos, PGP, or some other similar strong
authentication mechanism to protect against denial-of-service attacks in
the form of malicious fraudulent registrations."

The paper stops there ("we do not yet implement any special security
measures"); this module implements the mechanism it calls for, as an
optional extension that slots into the authenticator field the registration
messages already carry:

* a shared secret per (mobile host, home agent) pair;
* a keyed MAC over the security-relevant request fields (home address,
  care-of address, lifetime, identification);
* replay protection through strictly increasing identification numbers,
  which the base protocol already generates.

The MAC is HMAC-SHA256 from the standard library — the *construction*
(keyed MAC over canonical fields + anti-replay counter) is what the paper
asks for; the particular primitive is incidental.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict

from repro.core.registration import RegistrationRequest
from repro.net.addressing import IPAddress

#: Reply code for a failed authentication (IETF: 131 "mobile node failed
#: authentication").
CODE_DENIED_AUTHENTICATION = 131


def _canonical_bytes(request: RegistrationRequest) -> bytes:
    """The byte string the MAC covers: every field an attacker could
    usefully forge, in a fixed order."""
    return "|".join([
        str(request.home_address),
        str(request.care_of_address),
        str(request.home_agent),
        str(request.lifetime),
        str(request.identification),
    ]).encode()


def compute_authenticator(key: bytes, request: RegistrationRequest) -> bytes:
    """The MAC a legitimate mobile host attaches to *request*."""
    return hmac.new(key, _canonical_bytes(request), hashlib.sha256).digest()


@dataclass
class _Principal:
    key: bytes
    #: Highest identification accepted so far (anti-replay).
    last_identification: int = 0


class RegistrationAuthenticator:
    """Home-agent side: per-mobile keys, verification, replay rejection."""

    def __init__(self) -> None:
        self._principals: Dict[IPAddress, _Principal] = {}
        self.rejected_bad_mac = 0
        self.rejected_replay = 0

    def provision(self, home_address: IPAddress, key: bytes) -> None:
        """Install the shared secret for one mobile host."""
        if not key:
            raise ValueError("empty authentication key")
        self._principals[home_address] = _Principal(key=key)

    def revoke(self, home_address: IPAddress) -> None:
        """Remove the shared secret; the host becomes unauthenticated-open."""
        self._principals.pop(home_address, None)

    def requires_authentication(self, home_address: IPAddress) -> bool:
        """True if a key is provisioned for *home_address*."""
        return home_address in self._principals

    def verify(self, request: RegistrationRequest) -> bool:
        """True if the request is authentic and fresh.

        Hosts without a provisioned key are accepted (authentication is
        opt-in, as it was in the paper's deployment plans); provisioned
        hosts must present a valid, non-replayed MAC.
        """
        principal = self._principals.get(request.home_address)
        if principal is None:
            return True
        if request.authenticator is None:
            self.rejected_bad_mac += 1
            return False
        expected = compute_authenticator(principal.key, request)
        if not hmac.compare_digest(expected, request.authenticator):
            self.rejected_bad_mac += 1
            return False
        if request.identification <= principal.last_identification:
            self.rejected_replay += 1
            return False
        principal.last_identification = request.identification
        return True


class AuthenticatedRegistrationSigner:
    """Mobile-host side: attach the MAC to outgoing requests.

    Installed on a :class:`~repro.core.registration.RegistrationClient`
    via :meth:`install`, which wraps the client's dispatch path so every
    request (registration and deregistration alike) carries a valid
    authenticator, transparently to the rest of the mobile host.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("empty authentication key")
        self._key = key

    def sign(self, request: RegistrationRequest) -> RegistrationRequest:
        """Return a copy of *request* carrying a valid authenticator."""
        from dataclasses import replace

        return replace(request,
                       authenticator=compute_authenticator(self._key, request))

    def install(self, client) -> None:
        """Wrap *client* so all its requests are signed."""
        original = client._dispatch

        def signing_dispatch(request, on_done, on_fail, via, destination):
            signed = self.sign(request)
            # Keep the client's pending-table keyed by the same ident.
            original(signed, on_done, on_fail, via, destination)

        client._dispatch = signing_dispatch
