"""MosquitoNet mobile IP: the paper's contribution.

The package mirrors Section 3's decomposition:

* :mod:`repro.core.tunnel` — the VIF virtual interface and the IP-in-IP
  (IPIP) processing module, "actually implemented as one module for
  efficiency" (Figure 4).
* :mod:`repro.core.registration` — the registration protocol between the
  mobile host and its home agent.
* :mod:`repro.core.bindings` — the home agent's mobility binding table.
* :mod:`repro.core.policy` — the Mobile Policy Table and routing modes.
* :mod:`repro.core.home_agent` — proxy-ARP intercept + tunneling (§3.4).
* :mod:`repro.core.mobile_host` — the mobile host: the hooked
  ``ip_rt_route()``, home/local roles, care-of management (§3.3, §5.2).
* :mod:`repro.core.handoff` — cold/hot device switching and same-subnet
  address switching, instrumented for the §4 experiments.
* :mod:`repro.core.foreign_agent` — the IETF-style foreign agent baseline
  the paper deliberately leaves out (§2, §5.1 ablations).
"""

from repro.core.auth import (
    AuthenticatedRegistrationSigner,
    RegistrationAuthenticator,
)
from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.core.binding_shard import BindingShardPlane, HashRing
from repro.core.bindings import MobilityBinding, MobilityBindingTable
from repro.core.foreign_agent import ForeignAgentService
from repro.core.handoff import AddressSwitcher, DeviceSwitcher, SwitchTimeline
from repro.core.home_agent import HomeAgentService
from repro.core.mobile_host import MobileHost
from repro.core.notify import (
    EventKind,
    LinkProfile,
    NetworkChangeNotifier,
    NetworkEvent,
)
from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.core.smart_correspondent import SmartCorrespondent
from repro.core.registration import (
    CODE_ACCEPTED,
    RegistrationClient,
    RegistrationReply,
    RegistrationRequest,
)
from repro.core.tunnel import IPIPModule, VirtualInterface

__all__ = [
    "BindingShardPlane",
    "HashRing",
    "MobilityBinding",
    "MobilityBindingTable",
    "ForeignAgentService",
    "AddressSwitcher",
    "DeviceSwitcher",
    "SwitchTimeline",
    "HomeAgentService",
    "MobileHost",
    "MobilePolicyTable",
    "RoutingMode",
    "RegistrationClient",
    "RegistrationRequest",
    "RegistrationReply",
    "CODE_ACCEPTED",
    "IPIPModule",
    "VirtualInterface",
    "RegistrationAuthenticator",
    "AuthenticatedRegistrationSigner",
    "SmartCorrespondent",
    "NetworkChangeNotifier",
    "NetworkEvent",
    "EventKind",
    "LinkProfile",
    "ConnectivityManager",
    "AttachmentOption",
]
