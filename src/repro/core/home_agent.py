"""The home agent (Section 3.4).

The home agent's role is two-fold: decapsulate packets reverse-tunneled
from the mobile host (plain IPIP + IP forwarding), and intercept-then-
tunnel packets addressed to an away-from-home mobile host.  Interception
works exactly as the paper describes:

1. On a valid registration the home agent becomes the **ARP proxy** for the
   mobile host's home address, so the home subnet's router hands it the
   mobile host's packets.
2. It broadcasts a **gratuitous ARP** "on behalf of the mobile host to void
   any stale ARP cache entries on hosts in the same subnet".
3. It installs a host route sending the home address into its **VIF**,
   whose endpoint selector looks the destination up in the **mobility
   binding table** and emits an IP-in-IP packet to the registered care-of
   address.

Deregistration (the mobile host returned home) removes the binding, the
proxy-ARP entry and the host route.

The home agent does not need to be the subnet router: "we only require the
home agent to be one of the hosts on the same network" — the testbed can
build it either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Tuple

from repro.core.bindings import MobilityBinding, MobilityBindingTable
from repro.core.registration import (
    CODE_ACCEPTED,
    CODE_DENIED_BAD_REQUEST,
    CODE_DENIED_UNKNOWN_HOME,
    REGISTRATION_PORT,
    RegistrationReply,
    RegistrationRequest,
)
from repro.core.tunnel import VirtualInterface, install_tunnel
from repro.net.addressing import IPAddress
from repro.net.packet import AppData, IPPacket
from repro.net.routing import RouteEntry
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import EthernetInterface


class HomeAgentService:
    """Mobility service for one home subnet, attached to an existing host."""

    def __init__(self, host: "Host", home_interface: "EthernetInterface") -> None:
        self.host = host
        self.sim = host.sim
        self.config = host.config
        self.home_interface = home_interface
        self.address: IPAddress = _require_address(home_interface)
        self.vif: VirtualInterface = install_tunnel(host, name="vif.ha")
        self.vif.endpoint_selector = self._select_endpoints
        self.bindings = MobilityBindingTable(host.sim,
                                             on_expire=self._binding_expired,
                                             owner=host.name)
        self._served: Set[IPAddress] = set()
        #: Optional registration authentication (Section 5.1's ask); when
        #: set, provisioned mobile hosts must present valid MACs.
        self.authenticator = None
        #: Fault-injection hook: return False to drop an outgoing reply
        #: (simulating a lost registration reply).
        self.reply_filter: Optional[Callable[[RegistrationReply], bool]] = None
        #: True while the agent is crashed: requests fall on the floor.
        self._down = False
        #: True while the agent is partitioned away from the hosts: its
        #: state survives (unlike a crash) but datagrams are dropped, so
        #: whatever it knew is stale by the time the partition heals.
        self.partitioned = False
        #: Replication hook: fires after every accepted (de)registration
        #: with ``(home_address, binding_or_None)``.  The binding-shard
        #: plane uses it to keep a replicated copy and to supersede other
        #: replicas' copies; None leaves the agent standalone.
        self.on_binding_change: Optional[
            Callable[[IPAddress, Optional[MobilityBinding]], None]] = None
        self._intercept_routes: Dict[IPAddress, RouteEntry] = {}
        self._rng = host.sim.rng(f"home-agent:{host.name}")
        # Registrations are processed one at a time (one CPU): a burst of
        # simultaneous arrivals queues, which is what the scalability
        # experiment measures.
        self._processing_fifo = FifoDelay(host.sim)
        self._socket = host.udp.open(REGISTRATION_PORT
                                     ).on_datagram(self._on_datagram)
        host.ip.forwarding = True
        # Statistics.
        self.requests_received = 0
        self.registrations_accepted = 0
        self.deregistrations = 0
        self.requests_denied = 0
        self.restarts = 0
        self.bindings_expired = 0
        self.replies_dropped = 0
        metrics = host.sim.metrics
        self._received_counter = metrics.counter(
            "home_agent", "requests_received", host=host.name)
        self._accepted_counter = metrics.counter(
            "home_agent", "registrations_accepted", host=host.name)
        self._deregistered_counter = metrics.counter(
            "home_agent", "deregistrations", host=host.name)
        self._denied_counter = metrics.counter(
            "home_agent", "requests_denied", host=host.name)
        self._expired_counter = metrics.counter(
            "home_agent", "bindings_expired", host=host.name)

    # -------------------------------------------------------------- provision

    def serve(self, home_address: IPAddress) -> None:
        """Authorize mobility service for one home address."""
        self._served.add(home_address)

    def stops_serving(self, home_address: IPAddress) -> None:
        """Withdraw mobility service and any live intercept state."""
        self._served.discard(home_address)
        self._remove_intercept(home_address)
        self.bindings.deregister(home_address)

    def serves(self, home_address: IPAddress) -> bool:
        """True if mobility service is authorized for *home_address*."""
        return home_address in self._served

    def current_care_of(self, home_address: IPAddress) -> Optional[IPAddress]:
        """The registered care-of address, or None when home/expired."""
        binding = self.bindings.get(home_address)
        return binding.care_of_address if binding is not None else None

    # ------------------------------------------------------------ registration

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        request = data.content
        if not isinstance(request, RegistrationRequest):
            return
        if self._down:
            self.sim.trace.emit("registration", "ha_down_drop",
                                host=self.host.name,
                                ident=request.identification)
            return
        if self.partitioned:
            # Dropped before any counter moves: to the hosts a partitioned
            # agent is indistinguishable from a dead one, but its own
            # statistics and bindings live on.  Lazy counter so runs that
            # never partition keep an unchanged metrics snapshot.
            self.sim.metrics.counter("home_agent", "partition_drops",
                                     host=self.host.name).value += 1
            self.sim.trace.emit("registration", "ha_partition_drop",
                                host=self.host.name,
                                ident=request.identification)
            return
        self.requests_received += 1
        self._received_counter.value += 1
        timings = self.config.registration
        delay = (jittered(self._rng, timings.ha_receive_overhead, self.config.jitter)
                 + jittered(self._rng, timings.ha_processing_cost, self.config.jitter))
        self.sim.trace.emit("registration", "ha_received", host=self.host.name,
                            ident=request.identification, source=str(src))
        self._processing_fifo.schedule(delay,
                                       lambda: self._process(request, src),
                                       label="ha-process")

    def _process(self, request: RegistrationRequest, src: IPAddress) -> None:
        code = self._validate(request)
        if code == CODE_ACCEPTED:
            if request.is_deregistration:
                self._deregister(request)
            else:
                self._register(request)
        else:
            self.requests_denied += 1
            self._denied_counter.value += 1
        lifetime = 0 if request.is_deregistration else request.lifetime
        reply = RegistrationReply(code=code,
                                  home_address=request.home_address,
                                  care_of_address=request.care_of_address,
                                  lifetime=lifetime,
                                  identification=request.identification)
        destination = src if not src.is_unspecified else request.care_of_address
        send_cost = jittered(self._rng,
                             self.config.registration.ha_send_overhead,
                             self.config.jitter)

        def transmit_reply() -> None:
            if self.partitioned:
                # The partition cut both directions mid-exchange.
                self.sim.trace.emit("registration", "ha_partition_drop",
                                    host=self.host.name,
                                    ident=request.identification)
                return
            if self.reply_filter is not None and not self.reply_filter(reply):
                self.replies_dropped += 1
                # Created lazily so fault-free runs keep an unchanged
                # metrics snapshot.
                self.sim.metrics.counter("home_agent", "replies_dropped",
                                         host=self.host.name).value += 1
                self.sim.trace.emit("registration", "ha_reply_dropped",
                                    host=self.host.name,
                                    ident=request.identification)
                return
            # Timestamped here so the trace delta matches the paper's
            # "time between the home agent receiving the registration
            # request and sending out its reply" (1.48 ms in Figure 7).
            self.sim.trace.emit("registration", "ha_reply",
                                host=self.host.name,
                                ident=request.identification, code=code)
            self._socket.sendto(reply.wrap(), destination, REGISTRATION_PORT)

        self.sim.call_later(send_cost, transmit_reply, label="ha-reply-tx")

    def _validate(self, request: RegistrationRequest) -> int:
        if request.home_address not in self._served:
            return CODE_DENIED_UNKNOWN_HOME
        if request.home_agent != self.address:
            return CODE_DENIED_BAD_REQUEST
        if request.lifetime < 0:
            return CODE_DENIED_BAD_REQUEST
        if self.authenticator is not None and not self.authenticator.verify(request):
            from repro.core.auth import CODE_DENIED_AUTHENTICATION

            self.sim.trace.emit("registration", "auth_failed",
                                host=self.host.name,
                                home_address=str(request.home_address))
            return CODE_DENIED_AUTHENTICATION
        return CODE_ACCEPTED

    def _register(self, request: RegistrationRequest) -> None:
        binding = self.bindings.register(request.home_address,
                                         request.care_of_address,
                                         request.lifetime,
                                         request.identification,
                                         request.authenticator)
        self._install_intercept(request.home_address)
        self.registrations_accepted += 1
        self._accepted_counter.value += 1
        # The replication hook fires before the trace record, so a plane
        # superseding other replicas' copies emits their "flushed" records
        # ahead of this "registered" one — auditors see a consistent order.
        if self.on_binding_change is not None:
            self.on_binding_change(request.home_address, binding)
        self.sim.trace.emit("binding", "registered",
                            agent=self.host.name,
                            home_address=str(request.home_address),
                            care_of=str(request.care_of_address),
                            lifetime_ms=request.lifetime / 1_000_000)

    def _deregister(self, request: RegistrationRequest) -> None:
        self.bindings.deregister(request.home_address)
        self._remove_intercept(request.home_address)
        self.deregistrations += 1
        self._deregistered_counter.value += 1
        if self.on_binding_change is not None:
            self.on_binding_change(request.home_address, None)
        self.sim.trace.emit("binding", "deregistered",
                            agent=self.host.name,
                            home_address=str(request.home_address))

    # ------------------------------------------------------------- replication

    def flush_binding(self, home_address: IPAddress) -> bool:
        """Drop a (superseded) binding and its intercept state, if held.

        The binding-shard plane calls this when another replica has won a
        *newer* registration for the address: keeping the old copy alive
        would leave the home address double-owned.  Returns True if a
        binding was actually removed.
        """
        binding = self.bindings.deregister(home_address)
        if binding is None:
            return False
        self._remove_intercept(home_address)
        self.sim.metrics.counter("home_agent", "bindings_flushed",
                                 host=self.host.name).value += 1
        self.sim.trace.emit("binding", "flushed", agent=self.host.name,
                            home_address=str(home_address),
                            care_of=str(binding.care_of_address))
        return True

    def adopt_binding(self, binding: MobilityBinding) -> bool:
        """Take over a live binding handed across by a draining replica.

        The remaining lifetime is preserved (the mobile host's next
        renewal lands here through the plane's lookup), and the intercept
        machinery comes up exactly as for a fresh registration.  Expired
        bindings are refused.
        """
        remaining = binding.remaining(self.sim.now)
        if remaining <= 0:
            return False
        self.serve(binding.home_address)
        self.bindings.register(binding.home_address, binding.care_of_address,
                               remaining, binding.identification,
                               binding.authenticator)
        self._install_intercept(binding.home_address)
        self.sim.metrics.counter("home_agent", "bindings_adopted",
                                 host=self.host.name).value += 1
        self.sim.trace.emit("binding", "adopted", agent=self.host.name,
                            home_address=str(binding.home_address),
                            care_of=str(binding.care_of_address))
        return True

    # --------------------------------------------------------------- intercept

    def _install_intercept(self, home_address: IPAddress) -> None:
        """Proxy ARP + gratuitous ARP + host route into the VIF."""
        self.home_interface.arp.add_proxy(home_address)
        self.home_interface.arp.send_gratuitous(home_address)
        if home_address not in self._intercept_routes:
            entry = self.host.ip.routes.add_host_route(home_address, self.vif)
            self._intercept_routes[home_address] = entry

    def _remove_intercept(self, home_address: IPAddress) -> None:
        self.home_interface.arp.remove_proxy(home_address)
        entry = self._intercept_routes.pop(home_address, None)
        if entry is not None:
            self.host.ip.routes.remove(entry)

    def _binding_expired(self, binding: MobilityBinding) -> None:
        self._remove_intercept(binding.home_address)
        self.bindings_expired += 1
        self._expired_counter.value += 1

    # ------------------------------------------------------------------ faults

    def crash(self, down_for: int,
              on_recovered: Optional[Callable[[], None]] = None) -> None:
        """Restart the agent with state loss (the fault injector's hook).

        All mobility bindings, proxy-ARP entries and intercept routes are
        forgotten — exactly what a reboot of the paper's Pentium 90 home
        agent would do — and requests are ignored until recovery.  Mobile
        hosts win their service back only by re-registering, which is what
        lifetime-expiry renewal exists for.
        """
        if self._down:
            return
        self._down = True
        self.restarts += 1
        self.sim.trace.emit("home_agent", "crash", host=self.host.name,
                            bindings_lost=len(self.bindings))
        for binding in self.bindings.clear():
            self._remove_intercept(binding.home_address)

        def recover() -> None:
            self._down = False
            self.sim.trace.emit("home_agent", "recovered", host=self.host.name)
            if on_recovered is not None:
                on_recovered()

        self.sim.call_later(down_for, recover, label="ha-recover")

    @property
    def is_down(self) -> bool:
        """True while crashed (requests are being dropped)."""
        return self._down

    # ---------------------------------------------------------------- tunneling

    def _select_endpoints(self, inner: IPPacket
                          ) -> Optional[Tuple[IPAddress, IPAddress]]:
        """VIF endpoint selector: inner destination -> registered care-of."""
        binding = self.bindings.get(inner.dst)
        if binding is None:
            return None
        return (self.address, binding.care_of_address)


def _require_address(interface: "EthernetInterface") -> IPAddress:
    address = interface.address
    if address is None:
        raise ValueError(
            f"home agent interface {interface.name} has no address configured"
        )
    return address
