"""The registration protocol between mobile host and home agent.

"The mobile host serves as its own foreign agent and sends a registration
message to its home agent to notify it of the new care-of address."
(Section 3.1.)  The exchange is a UDP request/reply on port 434 (the IETF
mobile-IP registration port the paper's implementation follows):

* :class:`RegistrationRequest` — home address, care-of address, requested
  lifetime, an identification number for replay matching, and an (unused,
  as in the paper) authentication extension.
* :class:`RegistrationReply` — accept/deny code plus the granted lifetime.

A request whose care-of address equals the home address (equivalently,
lifetime zero) is a **deregistration**: the mobile host has returned home.

:class:`RegistrationClient` runs on the mobile host.  It retransmits lost
requests, matches replies by identification number, and exposes the
timestamps Figure 7 reports (request sent, reply received).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.addressing import IPAddress
from repro.net.packet import AppData
from repro.sim.engine import Event
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

#: UDP port home agents listen on (IETF mobile IP registration port).
REGISTRATION_PORT = 434

#: Reply codes (subset of the IETF draft's).
CODE_ACCEPTED = 0
CODE_DENIED_UNKNOWN_HOME = 128
CODE_DENIED_BAD_REQUEST = 134

#: Wire sizes of the messages (fixed part; we carry no real extensions).
REQUEST_BYTES = 52
REPLY_BYTES = 44


@dataclass(frozen=True)
class RegistrationRequest:
    """A (re-)registration or deregistration request."""

    home_address: IPAddress
    care_of_address: IPAddress
    home_agent: IPAddress
    lifetime: int
    identification: int
    #: Authentication extension placeholder (Section 2: "we do not yet
    #: implement any special security measures").
    authenticator: Optional[bytes] = None

    @property
    def is_deregistration(self) -> bool:
        """True for lifetime-zero or care-of == home requests."""
        return self.lifetime == 0 or self.care_of_address == self.home_address

    def wrap(self) -> AppData:
        """Box the message as a sized UDP payload."""
        return AppData(content=self, size_bytes=REQUEST_BYTES)


@dataclass(frozen=True)
class RegistrationReply:
    """The home agent's answer."""

    code: int
    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: int
    identification: int

    @property
    def accepted(self) -> bool:
        """True when the code signals acceptance."""
        return self.code == CODE_ACCEPTED

    def wrap(self) -> AppData:
        """Box the message as a sized UDP payload."""
        return AppData(content=self, size_bytes=REPLY_BYTES)


@dataclass
class RegistrationOutcome:
    """What the client reports back, with Figure 7's instrumentation."""

    reply: Optional[RegistrationReply]
    request_sent_at: int
    reply_received_at: int
    transmissions: int

    @property
    def accepted(self) -> bool:
        """True when a reply arrived and accepted the binding."""
        return self.reply is not None and self.reply.accepted

    @property
    def round_trip(self) -> int:
        """Request -> reply latency (the paper's 4.79 ms line)."""
        return self.reply_received_at - self.request_sent_at


@dataclass
class _PendingRegistration:
    request: RegistrationRequest
    on_done: Callable[[RegistrationOutcome], None]
    on_fail: Callable[[], None]
    sent_at: int
    transmissions: int
    retry_event: Optional[Event]
    via: Optional["NetworkInterface"] = None
    destination: Optional[IPAddress] = None


class RegistrationClient:
    """Mobile-host side of the registration protocol."""

    def __init__(self, host: "Host", home_address: IPAddress,
                 home_agent: IPAddress) -> None:
        # Per-instance, not a class attribute: a process-wide counter would
        # leak state between simulations and make same-seed runs emit
        # different identifications in their traces.
        self._idents = itertools.count(1)
        self.host = host
        self.sim = host.sim
        self.config = host.config
        self.home_address = home_address
        self.home_agent = home_agent
        self._rng = self.sim.rng(f"reg-client:{host.name}")
        # Backoff jitter draws from its own stream so enabling it never
        # perturbs the marshal/send cost sequence above.
        self._backoff_rng = self.sim.rng(f"reg-backoff:{host.name}")
        self._pending: Dict[int, _PendingRegistration] = {}
        #: Terminal-failure hook: fires (in addition to the per-request
        #: ``on_fail``) when a request exhausts ``max_transmissions``.
        #: Recovery layers use it to trigger a fresh registration attempt.
        self.on_give_up: Optional[Callable[[RegistrationRequest, int], None]] = None
        # The socket binds to the unspecified address: requests are sent
        # ``via`` a physical interface and carry its (care-of) address as
        # source, so the home agent's reply comes straight back without
        # depending on the tunnel that is being (re)negotiated.
        self._socket = host.udp.open(REGISTRATION_PORT
                                     ).on_datagram(self._on_datagram)
        self.registrations_sent = 0
        self.replies_received = 0
        metrics = self.sim.metrics
        self._attempts_counter = metrics.counter("registration", "attempts",
                                                 host=host.name)
        self._retries_counter = metrics.counter("registration", "retries",
                                                host=host.name)
        self._failures_counter = metrics.counter("registration", "failures",
                                                 host=host.name)
        self._latency_histogram = metrics.histogram(
            "registration", "latency_ms", host=host.name)

    def rebind_source(self, source: IPAddress) -> None:
        """Pin the registration socket's source address.

        Registration traffic must reach the home agent even before mobile
        routing is set up, so the socket binds explicitly (it is
        deliberately mobile-aware software in the paper's taxonomy).
        """
        self._socket.bound_address = source

    # ----------------------------------------------------------------- sending

    def register(self, care_of_address: IPAddress,
                 on_done: Callable[[RegistrationOutcome], None],
                 on_fail: Optional[Callable[[], None]] = None,
                 lifetime: Optional[int] = None,
                 via: Optional["NetworkInterface"] = None,
                 destination: Optional[IPAddress] = None,
                 home_agent: Optional[IPAddress] = None) -> RegistrationRequest:
        """Send a registration request; retransmit until replied or spent.

        ``destination`` overrides where the request is physically sent (the
        foreign-agent baseline sends it to the FA, which relays it).
        ``home_agent`` overrides the agent this one request is addressed
        to — how a host follows a binding-shard plane's takeover and
        membership changes without rebuilding its client — and defaults
        to the client's configured agent, leaving every existing caller's
        wire traffic byte-identical.
        """
        timings = self.config.registration
        granted = lifetime if lifetime is not None else timings.default_lifetime
        request = RegistrationRequest(
            home_address=self.home_address,
            care_of_address=care_of_address,
            home_agent=home_agent if home_agent is not None else self.home_agent,
            lifetime=granted,
            identification=next(self._idents),
        )
        self._dispatch(request, on_done, on_fail or _noop, via, destination)
        return request

    def deregister(self, on_done: Callable[[RegistrationOutcome], None],
                   on_fail: Optional[Callable[[], None]] = None,
                   via: Optional["NetworkInterface"] = None,
                   destination: Optional[IPAddress] = None) -> RegistrationRequest:
        """Tell the home agent we are back home (lifetime zero).

        ``destination`` lets the same message double as a binding
        *invalidation* toward a smart correspondent host.
        """
        request = RegistrationRequest(
            home_address=self.home_address,
            care_of_address=self.home_address,
            home_agent=self.home_agent,
            lifetime=0,
            identification=next(self._idents),
        )
        self._dispatch(request, on_done, on_fail or _noop, via, destination)
        return request

    def _dispatch(self, request: RegistrationRequest,
                  on_done: Callable[[RegistrationOutcome], None],
                  on_fail: Callable[[], None],
                  via: Optional["NetworkInterface"],
                  destination: Optional[IPAddress]) -> None:
        timings = self.config.registration
        pending = _PendingRegistration(request=request, on_done=on_done,
                                       on_fail=on_fail, sent_at=self.sim.now,
                                       transmissions=0, retry_event=None,
                                       via=via, destination=destination)
        self._pending[request.identification] = pending
        self._attempts_counter.value += 1
        self.sim.trace.emit("registration", "request_start",
                            host=self.host.name,
                            ident=request.identification,
                            care_of=str(request.care_of_address))
        marshal = jittered(self._rng, timings.mh_marshal_cost, self.config.jitter)
        send_cost = jittered(self._rng, timings.mh_send_overhead, self.config.jitter)
        self.sim.call_later(marshal + send_cost,
                            lambda: self._transmit(request.identification, via,
                                                   destination),
                            label="reg-marshal")

    def _retry_delay(self, transmissions: int) -> int:
        """Wait before the next transmission, after *transmissions* so far.

        Capped exponential backoff: the first retransmission waits exactly
        ``retransmit_interval`` (so clean runs are unchanged), each further
        one multiplies by ``backoff_multiplier`` up to ``backoff_cap``.
        """
        timings = self.config.registration
        delay = timings.retransmit_interval
        for _ in range(max(0, transmissions - 1)):
            if delay >= timings.backoff_cap:
                break
            delay = int(delay * timings.backoff_multiplier)
        delay = min(delay, timings.backoff_cap)
        if timings.backoff_jitter > 0.0:
            delay = jittered(self._backoff_rng, delay, timings.backoff_jitter)
        return max(1, delay)

    def _transmit(self, ident: int, via: Optional["NetworkInterface"],
                  destination: Optional[IPAddress]) -> None:
        pending = self._pending.get(ident)
        if pending is None:
            return
        timings = self.config.registration
        pending.transmissions += 1
        self.registrations_sent += 1
        if pending.transmissions > 1:
            self._retries_counter.value += 1
        target = (destination if destination is not None
                  else pending.request.home_agent)
        self.sim.trace.emit("registration", "request_sent", host=self.host.name,
                            ident=ident, attempt=pending.transmissions,
                            target=str(target))
        self._socket.sendto(pending.request.wrap(), target, REGISTRATION_PORT,
                            via=via)
        delay = self._retry_delay(pending.transmissions)
        if pending.transmissions >= timings.max_transmissions:
            pending.retry_event = self.sim.call_later(
                delay,
                lambda: self._give_up(ident),
                label="reg-giveup",
            )
        else:
            pending.retry_event = self.sim.call_later(
                delay,
                lambda: self._transmit(ident, via, destination),
                label="reg-retry",
            )

    def _give_up(self, ident: int) -> None:
        pending = self._pending.pop(ident, None)
        if pending is None:
            return
        self._failures_counter.value += 1
        self.sim.trace.emit("registration", "failed", host=self.host.name,
                            ident=ident, attempts=pending.transmissions)
        pending.on_fail()
        if self.on_give_up is not None:
            self.on_give_up(pending.request, pending.transmissions)

    # --------------------------------------------------------------- receiving

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        reply = data.content
        if not isinstance(reply, RegistrationReply):
            return
        pending = self._pending.pop(reply.identification, None)
        if pending is None:
            return  # duplicate or stale reply
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        receive_cost = jittered(self._rng,
                                self.config.registration.mh_receive_overhead,
                                self.config.jitter)

        def complete() -> None:
            self.replies_received += 1
            self.sim.trace.emit("registration", "reply_received",
                                host=self.host.name,
                                ident=reply.identification, code=reply.code)
            outcome = RegistrationOutcome(reply=reply,
                                          request_sent_at=pending.sent_at,
                                          reply_received_at=self.sim.now,
                                          transmissions=pending.transmissions)
            self._latency_histogram.observe(outcome.round_trip / 1e6)
            pending.on_done(outcome)

        self.sim.call_later(receive_cost, complete, label="reg-reply-rx")


def _noop() -> None:
    return None
