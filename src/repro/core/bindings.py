"""Mobility bindings: the home agent's record of who is where.

"It adds a *mobility binding* to an internal table to record the mobile
host's care-of address and other information such as the lifetime of the
registration and any authentication information." (Section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.addressing import IPAddress
from repro.sim.engine import Event, Simulator


@dataclass
class MobilityBinding:
    """One registered mobile host."""

    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: int
    registered_at: int
    expires_at: int
    identification: int = 0
    #: Placeholder for the authentication data the paper says bindings
    #: record; MosquitoNet (like this reproduction) does not yet verify it.
    authenticator: Optional[bytes] = None

    def is_active(self, now: int) -> bool:
        """True while the binding's lifetime has not lapsed."""
        return now < self.expires_at

    def remaining(self, now: int) -> int:
        """Nanoseconds of lifetime left at *now* (0 when expired)."""
        return max(0, self.expires_at - now)


class MobilityBindingTable:
    """Home-agent binding table with lifetime expiry.

    ``on_expire`` fires when a binding lapses without renewal, letting the
    home agent tear down its proxy-ARP entry and tunnel route.
    """

    def __init__(self, sim: Simulator,
                 on_expire: Optional[Callable[[MobilityBinding], None]] = None,
                 owner: str = "") -> None:
        self._sim = sim
        self._bindings: Dict[IPAddress, MobilityBinding] = {}
        self._expiry_events: Dict[IPAddress, Event] = {}
        self.on_expire = on_expire
        #: Name of the agent holding this table; stamped on expiry trace
        #: records so plane-level auditors can attribute them.
        self.owner = owner

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, home_address: object) -> bool:
        return isinstance(home_address, IPAddress) and self.get(home_address) is not None

    def get(self, home_address: IPAddress) -> Optional[MobilityBinding]:
        """The active binding for *home_address*, if any."""
        binding = self._bindings.get(home_address)
        if binding is None or not binding.is_active(self._sim.now):
            return None
        return binding

    def all_active(self) -> List[MobilityBinding]:
        """Every binding still within its lifetime."""
        now = self._sim.now
        return [binding for binding in self._bindings.values()
                if binding.is_active(now)]

    def register(self, home_address: IPAddress, care_of_address: IPAddress,
                 lifetime: int, identification: int = 0,
                 authenticator: Optional[bytes] = None) -> MobilityBinding:
        """Insert or replace the binding for *home_address*."""
        self._cancel_expiry(home_address)
        now = self._sim.now
        binding = MobilityBinding(home_address=home_address,
                                  care_of_address=care_of_address,
                                  lifetime=lifetime, registered_at=now,
                                  expires_at=now + lifetime,
                                  identification=identification,
                                  authenticator=authenticator)
        self._bindings[home_address] = binding
        self._expiry_events[home_address] = self._sim.call_later(
            lifetime, lambda: self._expire(home_address),
            label=f"binding-expiry:{home_address}",
        )
        return binding

    def deregister(self, home_address: IPAddress) -> Optional[MobilityBinding]:
        """Remove the binding (mobile host returned home)."""
        self._cancel_expiry(home_address)
        return self._bindings.pop(home_address, None)

    def clear(self) -> List[MobilityBinding]:
        """Drop every binding and expiry timer (home-agent state loss).

        Returns the dropped bindings so the caller can tear down the
        per-binding intercept state they backed.  ``on_expire`` does *not*
        fire: this is amnesia, not lifetime expiry.
        """
        for event in self._expiry_events.values():
            event.cancel()
        self._expiry_events.clear()
        dropped = list(self._bindings.values())
        self._bindings.clear()
        return dropped

    def _expire(self, home_address: IPAddress) -> None:
        binding = self._bindings.get(home_address)
        if binding is None or binding.is_active(self._sim.now):
            return
        del self._bindings[home_address]
        self._expiry_events.pop(home_address, None)
        self._sim.trace.emit("binding", "expired",
                             agent=self.owner,
                             home_address=str(home_address),
                             care_of=str(binding.care_of_address))
        if self.on_expire is not None:
            self.on_expire(binding)

    def _cancel_expiry(self, home_address: IPAddress) -> None:
        event = self._expiry_events.pop(home_address, None)
        if event is not None:
            event.cancel()
