"""The mobile host (Sections 3.1, 3.3, 5.2).

A :class:`MobileHost` is an ordinary :class:`~repro.net.host.Host` plus the
three kernel extensions the paper made:

1. **The hooked route lookup.**  ``ip_rt_route()`` is overridden by
   :meth:`MobileHost._mobile_route`, which implements Figure 4's decision
   tree: a packet whose source address is already bound to a particular
   interface is *outside the scope of mobile IP* (the local role); a packet
   with an unspecified source — or the home address — gets mobile-IP
   treatment according to the Mobile Policy Table.
2. **The Mobile Policy Table** (:class:`repro.core.policy.MobilePolicyTable`),
   consulted per destination to pick tunneling, the triangle route, the
   encapsulated-direct variant, or plain local communication.
3. **The VIF** for encapsulation: the mobile host is its own foreign agent,
   so it encapsulates outgoing tunneled packets and decapsulates incoming
   ones itself.

When the mobile host is away, its home address lives on the VIF (so
decapsulated packets for it are recognized as local) and the registration
protocol keeps the home agent pointed at the current care-of address.
When it is home, the home address lives on the home interface and the host
behaves exactly like a stationary one.
"""

from __future__ import annotations

import enum
import warnings
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.config import Config, DEFAULT_CONFIG
from repro.core.notify import NetworkChangeNotifier, profile_of
from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.core.registration import RegistrationClient, RegistrationOutcome
from repro.core.tunnel import VirtualInterface, install_tunnel
from repro.net.addressing import IPAddress, Subnet, UNSPECIFIED
from repro.net.host import Host
from repro.net.interface import EthernetInterface, NetworkInterface
from repro.net.packet import IPPacket
from repro.net.routing import RouteEntry, RouteResult
from repro.sim.engine import Event, Simulator
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    pass


class Location(enum.Enum):
    """Where the mobile host believes it is attached."""

    HOME = "home"
    FOREIGN = "foreign"               # collocated care-of (MosquitoNet mode)
    FOREIGN_WITH_FA = "foreign-fa"    # via a foreign agent (baseline mode)


class MobileHost(Host):
    """A host that can move between networks without dropping connections."""

    def __init__(self, sim: Simulator, name: str, home_address: IPAddress,
                 home_subnet: Subnet, home_agent: IPAddress,
                 *_shim,
                 config: Optional[Config] = None,
                 default_mode: Optional[RoutingMode] = None) -> None:
        if _shim:
            warnings.warn(
                "passing config/default_mode positionally to MobileHost is "
                "deprecated; use keyword arguments",
                DeprecationWarning, stacklevel=2)
            if config is None and len(_shim) >= 1:
                config = _shim[0]
            if default_mode is None and len(_shim) >= 2:
                default_mode = _shim[1]
        if config is None:
            config = DEFAULT_CONFIG
        if default_mode is None:
            default_mode = RoutingMode.TUNNEL
        super().__init__(sim, name, config, timings=config.mobile_host)
        self.home_address = home_address
        self.home_subnet = home_subnet
        self.home_agent = home_agent
        self.vif: VirtualInterface = install_tunnel(self, name="vif")
        self.vif.endpoint_selector = self._select_endpoints
        self.policy = MobilePolicyTable(default_mode=default_mode,
                                        metrics=sim.metrics, owner=name,
                                        cache_size=config.policy_cache_size)
        self.registration = RegistrationClient(self, home_address, home_agent)
        self.ip.route_hook = self._mobile_route

        self.location = Location.HOME
        self.care_of: Optional[IPAddress] = None
        self.active_interface: Optional[NetworkInterface] = None
        self.home_interface: Optional[NetworkInterface] = None
        self.foreign_agent: Optional[IPAddress] = None
        self._default_route: Optional[RouteEntry] = None
        #: Smart correspondent hosts (Section 3.2) that receive binding
        #: updates alongside the home agent, enabling the reverse-path
        #: optimization implemented in repro.core.smart_correspondent.
        self.smart_correspondents: set = set()
        #: The Section 6 notification API: applications subscribe here to
        #: hear about attachment and quality changes.
        self.notifier = NetworkChangeNotifier(sim)
        #: Pending lifetime-expiry renewal (armed only when
        #: ``config.registration.renewal_fraction`` > 0).
        self._renewal_event: Optional[Event] = None
        self.renewals_sent = 0

    # ------------------------------------------------------------- inspection

    @property
    def at_home(self) -> bool:
        """True when attached to the home network (mobility idle)."""
        return self.location == Location.HOME

    def describe_attachment(self) -> str:
        """Human-readable attachment summary for examples."""
        if self.at_home:
            return (f"{self.name}: at home as {self.home_address} "
                    f"on {self.home_interface.name if self.home_interface else '?'}")
        mode = "via FA" if self.location == Location.FOREIGN_WITH_FA else "collocated"
        return (f"{self.name}: away, home={self.home_address}, "
                f"care-of={self.care_of} ({mode}) "
                f"on {self.active_interface.name if self.active_interface else '?'}")

    # -------------------------------------------------------------- attachment

    def set_home(self, iface: NetworkInterface,
                 gateway: Optional[IPAddress] = None) -> None:
        """Declare *iface* the home interface and settle there (immediate).

        Used during topology construction; a *measured* return home goes
        through :meth:`come_home`.
        """
        self.home_interface = iface
        self.vif.remove_address(self.home_address)
        iface.subnet = self.home_subnet
        iface.add_address(self.home_address, make_primary=True)
        if not any(entry.destination == self.home_subnet and entry.interface is iface
                   for entry in self.ip.routes):
            self.ip.routes.add(RouteEntry(destination=self.home_subnet,
                                          interface=iface))
        if gateway is not None:
            self._set_default_route(iface, gateway)
        self.location = Location.HOME
        self.care_of = None
        self.active_interface = iface
        self.foreign_agent = None
        self._cancel_renewal()
        self.policy.invalidate_cache()
        self.notifier.attachment_changed(profile_of(iface))

    def start_visiting(self, iface: NetworkInterface, care_of: IPAddress,
                       net: Subnet, gateway: IPAddress,
                       on_registered: Optional[Callable[[RegistrationOutcome], None]] = None,
                       on_failed: Optional[Callable[[], None]] = None,
                       register: bool = True) -> None:
        """Adopt a collocated care-of address on a foreign network.

        This is the immediate (already-configured) form used by tests and
        by the handoff engine once its timed stages finish.
        """
        iface.subnet = net
        iface.add_address(care_of, make_primary=True)
        if not any(entry.destination == net and entry.interface is iface
                   for entry in self.ip.routes):
            self.ip.routes.add(RouteEntry(destination=net, interface=iface))
        self._set_default_route(iface, gateway)
        self._move_home_address_to_vif()
        self.location = Location.FOREIGN
        self.foreign_agent = None
        old_care_of = self.care_of
        self.care_of = care_of
        self.active_interface = iface
        self.policy.invalidate_cache()
        self.sim.trace.emit("mobile", "visiting", host=self.name,
                            care_of=str(care_of),
                            previous=str(old_care_of) if old_care_of else None)
        self.notifier.attachment_changed(profile_of(iface))
        if register:
            self.register_current(on_registered, on_failed)

    def attach_via_foreign_agent(self, iface: NetworkInterface,
                                 fa_address: IPAddress, net: Subnet,
                                 on_registered: Optional[Callable[[RegistrationOutcome], None]] = None,
                                 on_failed: Optional[Callable[[], None]] = None) -> None:
        """Baseline mode: use a foreign agent's address as care-of.

        The mobile host keeps only its home address (no local address at
        all — the whole point of a foreign agent), uses the FA as default
        router, and sends its registration request through the FA, which
        relays it to the home agent.
        """
        iface.subnet = net
        for other in self.interfaces:
            if other is not iface:
                other.remove_address(self.home_address)
        iface.add_address(self.home_address, make_primary=True)
        self._set_default_route(iface, fa_address)
        self.location = Location.FOREIGN_WITH_FA
        self.foreign_agent = fa_address
        self.care_of = fa_address
        self.active_interface = iface
        self.policy.invalidate_cache()
        self.sim.trace.emit("mobile", "visiting_fa", host=self.name,
                            foreign_agent=str(fa_address))
        self.registration.register(
            fa_address,
            on_done=on_registered if on_registered is not None else _ignore_outcome,
            on_fail=on_failed,
            via=iface,
            destination=fa_address,
        )

    def come_home(self, iface: Optional[NetworkInterface] = None,
                  gateway: Optional[IPAddress] = None,
                  on_done: Optional[Callable[[RegistrationOutcome], None]] = None,
                  on_failed: Optional[Callable[[], None]] = None) -> None:
        """Return to the home network: deregister and re-announce ourselves.

        The mobile host moves its home address back onto the physical home
        interface, sends a gratuitous ARP so neighbours stop using the home
        agent's proxy entry, and deregisters so the home agent drops the
        binding and its own proxy role.
        """
        home_iface = iface if iface is not None else self.home_interface
        if home_iface is None:
            raise ValueError(f"{self.name} has no home interface")
        self.set_home(home_iface, gateway=gateway)
        if isinstance(home_iface, EthernetInterface):
            home_iface.arp.send_gratuitous(self.home_address)
        self.registration.deregister(
            on_done=on_done if on_done is not None else _ignore_outcome,
            on_fail=on_failed,
            via=home_iface,
        )
        # Invalidate any smart correspondents' cached bindings too.
        for correspondent in self.smart_correspondents:
            self.registration.deregister(on_done=_ignore_outcome,
                                         via=home_iface,
                                         destination=correspondent)

    def stop_visiting(self, iface: NetworkInterface,
                      care_of: Optional[IPAddress] = None) -> None:
        """Drop a foreign attachment's address and routes (departure)."""
        victim = care_of if care_of is not None else (
            iface.address if iface.address != self.home_address else None)
        if victim is not None:
            iface.remove_address(victim)
        self.ip.routes.remove_matching(interface=iface)
        if self.active_interface is iface:
            self.active_interface = None
            self._cancel_renewal()

    # ------------------------------------------------------------ registration

    def register_current(self,
                         on_registered: Optional[Callable[[RegistrationOutcome], None]] = None,
                         on_failed: Optional[Callable[[], None]] = None,
                         lifetime: Optional[int] = None) -> None:
        """(Re-)register the current care-of address with the home agent.

        Smart correspondents get the same message as a binding update, in
        parallel — losing one of those only costs the optimization, never
        correctness, so their outcomes are not waited on.
        """
        if self.care_of is None or self.active_interface is None:
            raise ValueError(f"{self.name} has no care-of address to register")

        def done(outcome: RegistrationOutcome) -> None:
            if outcome.accepted and outcome.reply is not None:
                self._schedule_renewal(outcome.reply.lifetime)
            if on_registered is not None:
                on_registered(outcome)

        self.registration.register(
            self.care_of,
            on_done=done,
            on_fail=on_failed,
            lifetime=lifetime,
            via=self.active_interface,
        )
        for correspondent in self.smart_correspondents:
            self.registration.register(
                self.care_of, on_done=_ignore_outcome, lifetime=lifetime,
                via=self.active_interface, destination=correspondent,
            )

    def _schedule_renewal(self, granted_lifetime: int) -> None:
        """Arm re-registration before the binding's lifetime lapses.

        Without this, a binding that outlives ``default_lifetime`` simply
        expires at the home agent and the mobile host silently loses
        service (Section 3.1's lifetime is a lease, and leases renew).
        Disabled when ``renewal_fraction`` is 0 to keep legacy runs
        untouched.
        """
        fraction = self.config.registration.renewal_fraction
        self._cancel_renewal()
        if fraction <= 0.0 or granted_lifetime <= 0:
            return
        delay = max(1, int(granted_lifetime * fraction))
        self._renewal_event = self.sim.call_later(delay, self._renew_registration,
                                                  label="reg-renewal")

    def _cancel_renewal(self) -> None:
        if self._renewal_event is not None:
            self._renewal_event.cancel()
            self._renewal_event = None

    def _renew_registration(self) -> None:
        self._renewal_event = None
        if self.at_home or self.care_of is None or self.active_interface is None:
            return
        self.renewals_sent += 1
        self.sim.trace.emit("registration", "renewal", host=self.name,
                            care_of=str(self.care_of))
        self.register_current(on_failed=self._renewal_gave_up)

    def _renewal_gave_up(self) -> None:
        """A renewal exhausted its retransmissions; keep trying.

        The home agent may be mid-reboot — service comes back only through
        a later successful re-registration, so the renewal loop must not
        die with a single spent request.
        """
        if self.at_home or self.care_of is None:
            return
        self._cancel_renewal()
        self._renewal_event = self.sim.call_later(
            self.config.registration.backoff_cap, self._renew_registration,
            label="reg-renewal-retry")

    def add_smart_correspondent(self, address: IPAddress) -> None:
        """Start sending binding updates to a mobile-aware correspondent."""
        self.smart_correspondents.add(address)

    def remove_smart_correspondent(self, address: IPAddress) -> None:
        """Stop sending binding updates to *address*."""
        self.smart_correspondents.discard(address)

    # ----------------------------------------------------------------- routing

    def _set_default_route(self, iface: NetworkInterface,
                           gateway: IPAddress) -> None:
        self.ip.routes.remove_default()
        self._default_route = self.ip.routes.add_default(iface, gateway=gateway)

    def _mobile_route(self, dst: IPAddress, src_hint: IPAddress,
                      default: Callable[[IPAddress, IPAddress], Optional[RouteResult]]
                      ) -> Optional[RouteResult]:
        """The paper's modified ``ip_rt_route()`` (Figure 4's decision tree)."""
        if self.at_home:
            return None  # plain routing; mobility machinery is idle
        if not src_hint.is_unspecified and src_hint != self.home_address:
            # "Outside the scope of mobile IP": the application bound the
            # source itself (local role / mobile-aware software).
            return None
        mode = self.policy.lookup(dst)
        if self.location == Location.FOREIGN_WITH_FA and mode.encapsulates:
            # With a foreign agent the mobile host has no collocated
            # address to source an outer header from (its only address is
            # the home address), so the IETF baseline sends direct with
            # the home source and lets the FA route it — i.e. the triangle.
            mode = RoutingMode.TRIANGLE
        trace = self.sim.trace
        if trace.wants("policy"):
            trace.emit("policy", "decision", host=self.name,
                       destination=str(dst), mode=mode.value)
        if mode is RoutingMode.TUNNEL or mode is RoutingMode.ENCAP_DIRECT:
            # Route into the VIF; the endpoint selector picks the outer
            # destination (home agent, or the correspondent itself for the
            # encapsulated-direct variant).
            return RouteResult(interface=self.vif, source=self.home_address)
        if mode is RoutingMode.TRIANGLE:
            result = default(dst, self.home_address)
            if result is None:
                return None
            return RouteResult(interface=result.interface,
                               source=self.home_address,
                               gateway=result.gateway)
        # RoutingMode.LOCAL: ordinary routing with the care-of source.
        return default(dst, UNSPECIFIED)

    def _physical_source(self) -> Optional[IPAddress]:
        """The address the VIF stamps on outer headers."""
        if self.location == Location.FOREIGN_WITH_FA:
            return self.home_address  # only address we own in FA mode
        return self.care_of

    def _select_endpoints(self, inner: IPPacket
                          ) -> Optional[Tuple[IPAddress, IPAddress]]:
        """VIF endpoint selector for outgoing encapsulation."""
        source = self._physical_source()
        if source is None:
            return None
        mode = self.policy.lookup(inner.dst)
        if mode is RoutingMode.ENCAP_DIRECT:
            return (source, inner.dst)
        return (source, self.home_agent)

    def _move_home_address_to_vif(self) -> None:
        if self.home_interface is not None:
            self.home_interface.remove_address(self.home_address)
        for iface in self.interfaces:
            if iface is not self.vif:
                iface.remove_address(self.home_address)
        self.vif.add_address(self.home_address, make_primary=True)

    # ------------------------------------------------------------------ probes

    def probe_correspondent(self, dst: IPAddress,
                            on_result: Optional[Callable[[IPAddress, bool], None]] = None,
                            timeout: int = ms(2000)) -> None:
        """Ping *dst* under the current policy and cache the outcome.

        Section 3.2: "if we find that we cannot use the optimization,
        through failed attempts to ping a correspondent host, then we can
        revert to using the unoptimized route.  We can cache this
        information ... in the Mobile Policy Table."
        """

        def reached(rtt: int) -> None:
            self.policy.record_probe_result(dst, True)
            self.sim.trace.emit("policy", "probe_ok", host=self.name,
                                destination=str(dst), rtt_ms=rtt / 1_000_000)
            if on_result is not None:
                on_result(dst, True)

        def timed_out() -> None:
            self.policy.record_probe_result(dst, False)
            self.sim.trace.emit("policy", "probe_failed", host=self.name,
                                destination=str(dst))
            if on_result is not None:
                on_result(dst, False)

        self.icmp.ping(dst, on_reply=reached, on_timeout=timed_out,
                       timeout=timeout)


def _ignore_outcome(outcome: RegistrationOutcome) -> None:
    return None
