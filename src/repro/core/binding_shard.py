"""A consistent-hash plane of home-agent replicas (fleet-scale anchor).

The paper's single home agent serializes every registration on one CPU;
our x4 sweep showed that per-binding state at the anchor is the scaling
limit (the same bottleneck Dynamic Index NAT attacks for NAT-based
mobility).  This module shards the binding plane the way a production
deployment would:

* :class:`HashRing` — a classic consistent-hash ring over replica
  *names*.  Every replica contributes ``vnodes`` virtual points placed by
  a **seed-free** hash (BLAKE2b, never Python's per-process randomized
  ``hash()``), so two processes — or two machines — that build a ring
  from the same names agree on every placement without coordination.
  Adding or removing a replica moves only the keys adjacent to its
  points (~1/n of the space).
* :class:`BindingShardPlane` — wires the ring to live
  :class:`~repro.core.home_agent.HomeAgentService` replicas.  A home
  address is *served* by its ``replication`` ring successors, so when the
  primary :meth:`~repro.core.home_agent.HomeAgentService.crash`\\ es (the
  PR-4 restart machinery, reachable from a fault plan via
  :class:`~repro.faults.plan.HomeAgentRestart`'s ``agent`` field) lookups
  fail over to the next live replica — takeover without re-registration.

The aggregate fleet models (:mod:`repro.workloads.aggregate`) use the
ring purely mathematically: :meth:`HashRing.ownership` and
:meth:`HashRing.effective_ownership` give each replica's share of the
key space, which is what sets per-replica registration load at 10^5-10^6
hosts without instantiating per-host state.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.home_agent import HomeAgentService
    from repro.sim.engine import Simulator

_SPACE = 1 << 64

#: Virtual points each replica contributes to the ring.  64 keeps every
#: replica's share within ~±15-20% of fair; more smooths further at
#: linear memory/build cost.
DEFAULT_VNODES = 64
#: How many distinct successor replicas serve (are provisioned for) each
#: home address.
DEFAULT_REPLICATION = 2


def stable_hash64(key: str) -> int:
    """A 64-bit hash of *key* that never varies across processes.

    Python's builtin ``hash()`` is salted per process (PYTHONHASHSEED),
    which would scatter ring placements across workers and break the
    byte-identical ``--jobs`` contract; BLAKE2b is fast, stable and
    well-mixed.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over replica names with virtual nodes.

    Deterministic by construction: placements depend only on the member
    names and ``vnodes``, never on insertion order, process, or seed.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, List[int]] = {}
        for name in nodes:
            self.add(name)

    # ------------------------------------------------------------ membership

    @property
    def nodes(self) -> List[str]:
        """Member names, sorted (stable regardless of insertion order)."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def add(self, name: str) -> None:
        """Add a replica: ``vnodes`` points join the ring, the rest stay."""
        if name in self._nodes:
            raise ValueError(f"ring already contains {name!r}")
        points = []
        for index in range(self.vnodes):
            point = stable_hash64(f"{name}#{index}")
            position = bisect_right(self._points, point)
            # A full 64-bit collision between different names is beyond
            # unlikely; tie-break by name so even that stays deterministic.
            while (position < len(self._points)
                   and self._points[position] == point
                   and self._owners[position] < name):
                position += 1  # pragma: no cover
            self._points.insert(position, point)
            self._owners.insert(position, name)
            points.append(point)
        self._nodes[name] = points

    def remove(self, name: str) -> None:
        """Remove a replica; only its arcs change owners."""
        if name not in self._nodes:
            raise ValueError(f"ring does not contain {name!r}")
        del self._nodes[name]
        keep = [(point, owner)
                for point, owner in zip(self._points, self._owners)
                if owner != name]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ---------------------------------------------------------------- lookup

    def _successor_index(self, point: int) -> int:
        index = bisect_right(self._points, point)
        return index % len(self._points)

    def lookup(self, key: str,
               avoid: Optional[Callable[[str], bool]] = None) -> str:
        """The replica owning *key*: the first point clockwise of its hash.

        ``avoid`` is the takeover hook: a predicate marking replicas that
        cannot serve right now (crashed); the walk continues clockwise to
        the first point owned by an acceptable replica.  Raises
        ``LookupError`` when the ring is empty or every replica is
        avoided.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        index = self._successor_index(stable_hash64(key))
        if avoid is None:
            return self._owners[index]
        for step in range(len(self._points)):
            owner = self._owners[(index + step) % len(self._points)]
            if not avoid(owner):
                return owner
        raise LookupError("every replica on the ring is avoided")

    def replicas(self, key: str, count: int) -> List[str]:
        """The first *count* **distinct** replicas clockwise from *key*.

        The primary comes first; the rest are the takeover order.  Fewer
        than *count* members yields them all.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        found: List[str] = []
        index = self._successor_index(stable_hash64(key))
        for step in range(len(self._points)):
            owner = self._owners[(index + step) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == count:
                    break
        return found

    # ------------------------------------------------------------- ownership

    def ownership(self) -> Dict[str, float]:
        """Each replica's fraction of the hash space (sums to 1.0).

        This is the *expected* share of uniformly hashed keys, which the
        aggregate fleet models use to set per-replica registration load
        without hashing every host.
        """
        return self.effective_ownership(frozenset())

    def effective_ownership(self, failed: frozenset) -> Dict[str, float]:
        """Ownership after the *failed* replicas' arcs fail over.

        Each arc owned by a failed replica is inherited by the next
        clockwise point whose owner is live — exactly what
        :meth:`lookup` with an ``avoid`` predicate does per key, computed
        in closed form over arcs.  Failed replicas report share 0.0.
        """
        shares: Dict[str, float] = {name: 0.0 for name in self._nodes}
        live = [name for name in self._nodes if name not in failed]
        if not live:
            return shares
        count = len(self._points)
        for index, point in enumerate(self._points):
            previous = self._points[index - 1] if index else self._points[-1]
            arc = (point - previous) % _SPACE
            if arc == 0 and count == 1:
                arc = _SPACE  # a single point owns the whole circle
            owner = self._owners[index]
            if owner in failed:
                for step in range(1, count + 1):
                    candidate = self._owners[(index + step) % count]
                    if candidate not in failed:
                        owner = candidate
                        break
            shares[owner] += arc / _SPACE
        return shares


class BindingShardPlane:
    """The distributed home-agent control plane: ring + live replicas.

    ``agents`` maps replica names to :class:`HomeAgentService` instances
    (anything exposing ``serve``/``crash``/``is_down`` works, which keeps
    the plane testable without a full topology).  A home address is
    provisioned on its ``replication`` ring successors so a crashed
    primary's bindings can be re-won at a live replica without waiting
    for it to come back.

    Observability is lazy: the per-shard gauges and takeover counters
    appear in the metrics snapshot only once the plane actually serves an
    address or fails a lookup over, so building (and never using) a plane
    leaves snapshots byte-identical.
    """

    def __init__(self, sim: "Simulator",
                 agents: Mapping[str, "HomeAgentService"], *,
                 replication: int = DEFAULT_REPLICATION,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not agents:
            raise ValueError("a binding-shard plane needs at least one agent")
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        self.sim = sim
        self.agents: Dict[str, "HomeAgentService"] = dict(agents)
        self.replication = min(replication, len(self.agents))
        self.ring = HashRing(self.agents, vnodes=vnodes)
        self.takeovers = 0
        self._provisioned: Dict[str, set] = {}

    # ------------------------------------------------------------- provision

    def owners(self, home_address: object) -> List[str]:
        """The replica names serving *home_address*, primary first."""
        return self.ring.replicas(str(home_address), self.replication)

    def serve(self, home_address: object) -> List[str]:
        """Authorize service for *home_address* on all its replicas."""
        names = self.owners(home_address)
        for name in names:
            self.agents[name].serve(home_address)
            provisioned = self._provisioned.setdefault(name, set())
            if home_address not in provisioned:
                provisioned.add(home_address)
                # Lazy per-shard gauge: distinct addresses provisioned here.
                gauge = self.sim.metrics.gauge("binding_shard", "served",
                                               agent=name)
                gauge.value += 1
        return names

    # ---------------------------------------------------------------- lookup

    def agent_for(self, home_address: object) -> Optional["HomeAgentService"]:
        """The live replica currently responsible for *home_address*.

        The primary when it is up; otherwise the next live replica
        clockwise (takeover).  ``None`` when every replica is down.
        """
        names = self.owners(home_address)
        primary = names[0]
        for name in names:
            agent = self.agents[name]
            if not agent.is_down:
                if name != primary:
                    self._count_takeover(primary, name)
                return agent
        # Every provisioned replica is down: any live ring member may
        # take over (it will accept re-registrations once provisioned).
        try:
            name = self.ring.lookup(str(home_address),
                                    avoid=lambda n: self.agents[n].is_down)
        except LookupError:
            return None
        self._count_takeover(primary, name)
        return self.agents[name]

    def _count_takeover(self, primary: str, takeover: str) -> None:
        self.takeovers += 1
        counter = self.sim.metrics.counter("binding_shard", "takeovers",
                                           agent=takeover)
        counter.value += 1
        self.sim.trace.emit("binding_shard", "takeover",
                            primary=primary, takeover=takeover)

    # ---------------------------------------------------------------- faults

    def crash(self, name: str, down_for: int,
              on_recovered: Optional[Callable[[], None]] = None) -> None:
        """Crash one replica (state loss + downtime, PR-4 machinery)."""
        agent = self.agents.get(name)
        if agent is None:
            raise ValueError(f"plane has no agent {name!r}; "
                             f"known: {sorted(self.agents)}")
        agent.crash(down_for, on_recovered=on_recovered)

    def is_down(self, name: str) -> bool:
        """True while the named replica is crashed."""
        return self.agents[name].is_down

    def down_agents(self) -> List[str]:
        """Names of currently crashed replicas, sorted."""
        return sorted(name for name, agent in self.agents.items()
                      if agent.is_down)
