"""A consistent-hash plane of home-agent replicas (fleet-scale anchor).

The paper's single home agent serializes every registration on one CPU;
our x4 sweep showed that per-binding state at the anchor is the scaling
limit (the same bottleneck Dynamic Index NAT attacks for NAT-based
mobility).  This module shards the binding plane the way a production
deployment would:

* :class:`HashRing` — a classic consistent-hash ring over replica
  *names*.  Every replica contributes ``vnodes`` virtual points placed by
  a **seed-free** hash (BLAKE2b, never Python's per-process randomized
  ``hash()``), so two processes — or two machines — that build a ring
  from the same names agree on every placement without coordination.
  Adding or removing a replica moves only the keys adjacent to its
  points (~1/n of the space).
* :class:`BindingShardPlane` — wires the ring to live
  :class:`~repro.core.home_agent.HomeAgentService` replicas.  A home
  address is *served* by its ``replication`` ring successors, so when the
  primary :meth:`~repro.core.home_agent.HomeAgentService.crash`\\ es (the
  PR-4 restart machinery, reachable from a fault plan via
  :class:`~repro.faults.plan.HomeAgentRestart`'s ``agent`` field) lookups
  fail over to the next live replica — takeover without re-registration.

The aggregate fleet models (:mod:`repro.workloads.aggregate`) use the
ring purely mathematically: :meth:`HashRing.ownership` and
:meth:`HashRing.effective_ownership` give each replica's share of the
key space, which is what sets per-replica registration load at 10^5-10^6
hosts without instantiating per-host state.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.config import Config, DEFAULT_CONFIG

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.home_agent import HomeAgentService
    from repro.net.addressing import IPAddress
    from repro.sim.engine import Simulator

_SPACE = 1 << 64

#: Virtual points each replica contributes to the ring.  64 keeps every
#: replica's share within ~±15-20% of fair; more smooths further at
#: linear memory/build cost.
DEFAULT_VNODES = 64
#: How many distinct successor replicas serve (are provisioned for) each
#: home address.
DEFAULT_REPLICATION = 2


def stable_hash64(key: str) -> int:
    """A 64-bit hash of *key* that never varies across processes.

    Python's builtin ``hash()`` is salted per process (PYTHONHASHSEED),
    which would scatter ring placements across workers and break the
    byte-identical ``--jobs`` contract; BLAKE2b is fast, stable and
    well-mixed.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over replica names with virtual nodes.

    Deterministic by construction: placements depend only on the member
    names and ``vnodes``, never on insertion order, process, or seed.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, List[int]] = {}
        for name in nodes:
            self.add(name)

    # ------------------------------------------------------------ membership

    @property
    def nodes(self) -> List[str]:
        """Member names, sorted (stable regardless of insertion order)."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def add(self, name: str) -> None:
        """Add a replica: ``vnodes`` points join the ring, the rest stay."""
        if name in self._nodes:
            raise ValueError(f"ring already contains {name!r}")
        points = []
        for index in range(self.vnodes):
            point = stable_hash64(f"{name}#{index}")
            position = bisect_right(self._points, point)
            # A full 64-bit collision between different names is beyond
            # unlikely; tie-break by name so even that stays deterministic.
            while (position < len(self._points)
                   and self._points[position] == point
                   and self._owners[position] < name):
                position += 1  # pragma: no cover
            self._points.insert(position, point)
            self._owners.insert(position, name)
            points.append(point)
        self._nodes[name] = points

    def remove(self, name: str) -> None:
        """Remove a replica; only its arcs change owners."""
        if name not in self._nodes:
            raise ValueError(f"ring does not contain {name!r}")
        del self._nodes[name]
        keep = [(point, owner)
                for point, owner in zip(self._points, self._owners)
                if owner != name]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ---------------------------------------------------------------- lookup

    def _successor_index(self, point: int) -> int:
        index = bisect_right(self._points, point)
        return index % len(self._points)

    def lookup(self, key: str,
               avoid: Optional[Callable[[str], bool]] = None) -> str:
        """The replica owning *key*: the first point clockwise of its hash.

        ``avoid`` is the takeover hook: a predicate marking replicas that
        cannot serve right now (crashed); the walk continues clockwise to
        the first point owned by an acceptable replica.  Raises
        ``LookupError`` when the ring is empty or every replica is
        avoided.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        index = self._successor_index(stable_hash64(key))
        if avoid is None:
            return self._owners[index]
        for step in range(len(self._points)):
            owner = self._owners[(index + step) % len(self._points)]
            if not avoid(owner):
                return owner
        raise LookupError("every replica on the ring is avoided")

    def replicas(self, key: str, count: int) -> List[str]:
        """The first *count* **distinct** replicas clockwise from *key*.

        The primary comes first; the rest are the takeover order.  Fewer
        than *count* members yields them all.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        found: List[str] = []
        index = self._successor_index(stable_hash64(key))
        for step in range(len(self._points)):
            owner = self._owners[(index + step) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == count:
                    break
        return found

    # ------------------------------------------------------------- ownership

    def ownership(self) -> Dict[str, float]:
        """Each replica's fraction of the hash space (sums to 1.0).

        This is the *expected* share of uniformly hashed keys, which the
        aggregate fleet models use to set per-replica registration load
        without hashing every host.
        """
        return self.effective_ownership(frozenset())

    def effective_ownership(self, failed: frozenset) -> Dict[str, float]:
        """Ownership after the *failed* replicas' arcs fail over.

        Each arc owned by a failed replica is inherited by the next
        clockwise point whose owner is live — exactly what
        :meth:`lookup` with an ``avoid`` predicate does per key, computed
        in closed form over arcs.  Failed replicas report share 0.0.
        """
        shares: Dict[str, float] = {name: 0.0 for name in self._nodes}
        live = [name for name in self._nodes if name not in failed]
        if not live:
            return shares
        count = len(self._points)
        for index, point in enumerate(self._points):
            previous = self._points[index - 1] if index else self._points[-1]
            arc = (point - previous) % _SPACE
            if arc == 0 and count == 1:
                arc = _SPACE  # a single point owns the whole circle
            owner = self._owners[index]
            if owner in failed:
                for step in range(1, count + 1):
                    candidate = self._owners[(index + step) % count]
                    if candidate not in failed:
                        owner = candidate
                        break
            shares[owner] += arc / _SPACE
        return shares


class BindingShardPlane:
    """The distributed home-agent control plane: ring + live replicas.

    ``agents`` maps replica names to :class:`HomeAgentService` instances
    (anything exposing ``serve``/``crash``/``is_down`` works, which keeps
    the plane testable without a full topology).  A home address is
    provisioned on its ``replication`` ring successors so a crashed
    primary's bindings can be re-won at a live replica without waiting
    for it to come back.

    Observability is lazy: the per-shard gauges and takeover counters
    appear in the metrics snapshot only once the plane actually serves an
    address or fails a lookup over, so building (and never using) a plane
    leaves snapshots byte-identical.
    """

    def __init__(self, sim: "Simulator",
                 agents: Mapping[str, "HomeAgentService"], *,
                 replication: int = DEFAULT_REPLICATION,
                 vnodes: int = DEFAULT_VNODES,
                 spares: Optional[Mapping[str, "HomeAgentService"]] = None,
                 config: Config = DEFAULT_CONFIG) -> None:
        if not agents:
            raise ValueError("a binding-shard plane needs at least one agent")
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        self.sim = sim
        self.config = config
        self.agents: Dict[str, "HomeAgentService"] = dict(agents)
        #: Standby replicas a :class:`~repro.faults.plan.ReplicaJoin` (or a
        #: direct :meth:`add_replica`) can promote into the plane by name.
        self.spares: Dict[str, "HomeAgentService"] = dict(spares or {})
        overlap = set(self.agents) & set(self.spares)
        if overlap:
            raise ValueError(f"agents also listed as spares: {sorted(overlap)}")
        self._requested_replication = replication
        self.replication = min(replication, len(self.agents))
        self.ring = HashRing(self.agents, vnodes=vnodes)
        self.takeovers = 0
        self.stale_served = 0
        self._provisioned: Dict[str, set] = {}
        #: Every address ever served, for re-provisioning on membership
        #: changes (sorted iteration keeps those deterministic).
        self._served_addresses: set = set()
        #: Replica names currently partitioned away from the hosts.
        self._partitioned: set = set()
        #: Current takeover replica per address (edge accounting: a
        #: takeover is counted when responsibility *moves*, not per call).
        self._takeover_from: Dict[str, str] = {}
        #: The plane's replicated binding copies: str(home) -> (care-of,
        #: updated-at, origin replica).  Fed by the agents'
        #: ``on_binding_change`` hooks; serves the bounded-staleness
        #: degraded mode and survives origin crashes (that is the point).
        self._replicated: Dict[str, Tuple["IPAddress", int, str]] = {}
        for name, agent in self.agents.items():
            self._install_sync(name, agent)

    # ------------------------------------------------------------- provision

    def owners(self, home_address: object) -> List[str]:
        """The replica names serving *home_address*, primary first."""
        return self.ring.replicas(str(home_address), self.replication)

    def serve(self, home_address: object) -> List[str]:
        """Authorize service for *home_address* on all its replicas."""
        self._served_addresses.add(home_address)
        names = self.owners(home_address)
        for name in names:
            self._provision(name, home_address)
        return names

    def _provision(self, name: str, home_address: object) -> None:
        provisioned = self._provisioned.setdefault(name, set())
        if home_address in provisioned:
            return
        self.agents[name].serve(home_address)
        provisioned.add(home_address)
        # Lazy per-shard gauge: distinct addresses provisioned here.
        gauge = self.sim.metrics.gauge("binding_shard", "served", agent=name)
        gauge.value += 1

    def _reprovision(self) -> None:
        """Re-derive every served address's owners after a ring change."""
        for home_address in sorted(self._served_addresses, key=str):
            for name in self.owners(home_address):
                self._provision(name, home_address)

    # ---------------------------------------------------------------- lookup

    def reachable(self, name: str) -> bool:
        """True when the named replica is a live, unpartitioned member."""
        agent = self.agents.get(name)
        return (agent is not None and not agent.is_down
                and name not in self._partitioned)

    def agent_for(self, home_address: object) -> Optional["HomeAgentService"]:
        """The reachable replica currently responsible for *home_address*.

        The primary when it is up and unpartitioned; otherwise the next
        reachable replica clockwise (takeover).  ``None`` when every
        replica is unreachable.  Takeovers are counted on *transitions* —
        responsibility moving to a (different) non-primary replica — so
        polling this during one continuous outage counts one takeover,
        and a fault-free run never touches the takeover counters.
        """
        names = self.owners(home_address)
        primary = names[0]
        key = str(home_address)
        for name in names:
            if self.reachable(name):
                if name == primary:
                    self._takeover_from.pop(key, None)
                elif self._takeover_from.get(key) != name:
                    self._takeover_from[key] = name
                    self._count_takeover(primary, name)
                return self.agents[name]
        # Every provisioned replica is unreachable: any reachable ring
        # member may take over (it accepts re-registrations once
        # provisioned).
        try:
            name = self.ring.lookup(key,
                                    avoid=lambda n: not self.reachable(n))
        except LookupError:
            return None
        if self._takeover_from.get(key) != name:
            self._takeover_from[key] = name
            self._count_takeover(primary, name)
        return self.agents[name]

    def _count_takeover(self, primary: str, takeover: str) -> None:
        self.takeovers += 1
        counter = self.sim.metrics.counter("binding_shard", "takeovers",
                                           agent=takeover)
        counter.value += 1
        self.sim.trace.emit("binding_shard", "takeover",
                            primary=primary, takeover=takeover)

    def lookup_binding(self, home_address: object
                       ) -> Optional[Tuple["IPAddress", str]]:
        """Resolve *home_address* to its care-of address, if anyone can.

        Returns ``(care_of, source)`` where ``source`` is
        ``"authoritative"`` (the responsible replica's live binding) or
        ``"stale"`` (the bounded-staleness degraded mode: the replicated
        copy, served because the authoritative lookup missed while
        :attr:`~repro.config.FleetTimings.stale_serve` is enabled and the
        copy is younger than
        :attr:`~repro.config.FleetTimings.stale_serve_cap`).  ``None``
        when nobody can answer.
        """
        agent = self.agent_for(home_address)
        if agent is not None and hasattr(agent, "bindings"):
            binding = agent.bindings.get(home_address)
            if binding is not None:
                return (binding.care_of_address, "authoritative")
        fleet = self.config.fleet
        if not fleet.stale_serve:
            return None
        record = self._replicated.get(str(home_address))
        if record is None:
            return None
        care_of, updated_at, origin = record
        if self.sim.now - updated_at > fleet.stale_serve_cap:
            return None
        self.stale_served += 1
        self.sim.metrics.counter("binding_shard", "stale_served").value += 1
        self.sim.trace.emit("binding_shard", "stale_served",
                            home_address=str(home_address),
                            origin=origin,
                            age_ms=(self.sim.now - updated_at) / 1e6)
        return (care_of, "stale")

    # ------------------------------------------------------------ replication

    def _install_sync(self, name: str, agent: "HomeAgentService") -> None:
        """Feed the plane's replicated copies from an agent's registrations.

        Duck-typed replicas without the hook (unit-test fakes) simply do
        not replicate — every pre-existing behaviour is preserved.
        """
        if hasattr(agent, "on_binding_change"):
            agent.on_binding_change = (
                lambda home, binding, name=name:
                self._on_binding_change(name, home, binding))

    def _on_binding_change(self, name: str, home_address: "IPAddress",
                           binding) -> None:
        key = str(home_address)
        if binding is None:
            self._replicated.pop(key, None)
            return
        self._replicated[key] = (binding.care_of_address, self.sim.now, name)
        # A fresh registration supersedes every other *reachable* copy of
        # the binding: leaving one alive would double-own the address.
        # Unreachable copies cannot be touched (that is what makes a
        # partition nasty); they are reconciled when the partition heals.
        for other_name, other in self.agents.items():
            if other_name == name or not self.reachable(other_name):
                continue
            if hasattr(other, "flush_binding") and hasattr(other, "bindings"):
                if other.bindings.get(home_address) is not None:
                    other.flush_binding(home_address)

    # ------------------------------------------------------------ membership

    def add_replica(self, name: str,
                    agent: Optional["HomeAgentService"] = None
                    ) -> "HomeAgentService":
        """Promote a spare (crash-join) into the plane under live load.

        The joiner arrives empty: the addresses its arcs now own are
        (re-)provisioned on it immediately, and their *bindings* are won
        back through ordinary re-registration — exactly how a rebooted
        replica would rejoin.  ``agent`` defaults to the plane's
        ``spares`` entry for *name*.
        """
        if name in self.agents:
            raise ValueError(f"plane already has agent {name!r}; "
                             f"members: {sorted(self.agents)}")
        if agent is None:
            agent = self.spares.get(name)
            if agent is None:
                raise ValueError(
                    f"plane has no spare {name!r}; "
                    f"spares: {sorted(self.spares)}, "
                    f"members: {sorted(self.agents)}")
        self.spares.pop(name, None)
        self.agents[name] = agent
        self.ring.add(name)
        self.replication = min(self._requested_replication, len(self.agents))
        self._install_sync(name, agent)
        self._reprovision()
        self.sim.metrics.counter("binding_shard", "joins").value += 1
        self.sim.trace.emit("binding_shard", "join", agent=name,
                            members=len(self.agents))
        return agent

    def drain_replica(self, name: str) -> int:
        """Gracefully remove a replica: re-serve and hand over, then leave.

        The drained replica's addresses are provisioned on their new
        owners first, its live bindings are *adopted* by the reachable
        new primary (remaining lifetime preserved), and only then does it
        stop serving — so a planned departure moves every binding without
        a re-registration storm.  Returns the number of bindings moved.
        The drained agent goes back into ``spares`` (it can rejoin).
        """
        agent = self.agents.get(name)
        if agent is None:
            raise ValueError(f"plane has no agent {name!r}; "
                             f"known: {sorted(self.agents)}")
        if len(self.agents) == 1:
            raise ValueError(f"cannot drain {name!r}: it is the plane's "
                             "last replica")
        # Announced before any state moves so auditors retire the member
        # first and see the hand-over records against the new membership.
        self.sim.trace.emit("binding_shard", "drain", agent=name,
                            members=len(self.agents) - 1)
        del self.agents[name]
        self.ring.remove(name)
        self._partitioned.discard(name)
        if hasattr(agent, "partitioned"):
            agent.partitioned = False
        self.replication = min(self._requested_replication, len(self.agents))
        provisioned = self._provisioned.pop(name, set())
        self._reprovision()
        moved = 0
        if hasattr(agent, "bindings"):
            for binding in sorted(agent.bindings.all_active(),
                                  key=lambda b: str(b.home_address)):
                target_name = self._adoption_target(binding.home_address)
                if target_name is None:
                    continue  # unreachable plane: hosts must re-win later
                target = self.agents[target_name]
                if not hasattr(target, "adopt_binding"):
                    continue
                if target.adopt_binding(binding):
                    self._replicated[str(binding.home_address)] = (
                        binding.care_of_address, self.sim.now, target_name)
                    moved += 1
        if hasattr(agent, "stops_serving"):
            for home_address in sorted(provisioned, key=str):
                agent.stops_serving(home_address)
        gauge = self.sim.metrics.gauge("binding_shard", "served", agent=name)
        gauge.value = 0
        self.spares[name] = agent
        self.sim.metrics.counter("binding_shard", "drains").value += 1
        self.sim.trace.emit("binding_shard", "drained", agent=name,
                            moved=moved)
        return moved

    def _adoption_target(self, home_address: object) -> Optional[str]:
        for name in self.owners(home_address):
            if self.reachable(name):
                return name
        try:
            return self.ring.lookup(str(home_address),
                                    avoid=lambda n: not self.reachable(n))
        except LookupError:
            return None

    # ---------------------------------------------------------------- faults

    def crash(self, name: str, down_for: int,
              on_recovered: Optional[Callable[[], None]] = None) -> None:
        """Crash one replica (state loss + downtime, PR-4 machinery)."""
        agent = self.agents.get(name)
        if agent is None:
            raise ValueError(f"plane has no agent {name!r}; "
                             f"known: {sorted(self.agents)}")
        agent.crash(down_for, on_recovered=on_recovered)

    def partition(self, names: Iterable[str], duration: int) -> None:
        """Make the named replicas unreachable for *duration*, state intact.

        Unlike :meth:`crash`, nothing is lost: the partitioned replicas
        keep their bindings and keep believing they own them — by heal
        time that state is stale, and the plane reconciles it (newest
        registration wins, older copies are flushed).
        """
        requested = sorted(set(names))
        unknown = [name for name in requested if name not in self.agents]
        if unknown:
            raise ValueError(f"plane cannot partition unknown agents "
                             f"{unknown}; known: {sorted(self.agents)}")
        fresh = [name for name in requested if name not in self._partitioned]
        if not fresh:
            return
        self._partitioned.update(fresh)
        for name in fresh:
            agent = self.agents[name]
            if hasattr(agent, "partitioned"):
                agent.partitioned = True
        self.sim.metrics.counter("binding_shard", "partitions").value += 1
        self.sim.trace.emit("binding_shard", "partition",
                            agents=",".join(fresh))
        self.sim.call_later(duration, lambda: self._heal(fresh),
                            label="plane-heal")

    def _heal(self, names: List[str]) -> None:
        flushed = 0
        healed = [name for name in names if name in self._partitioned]
        self._partitioned.difference_update(healed)
        for name in healed:
            agent = self.agents.get(name)
            if agent is not None and hasattr(agent, "partitioned"):
                agent.partitioned = False
        # Reconciliation: for every binding a healed replica still holds,
        # the *newest* registration among reachable holders wins; older
        # copies — usually the healed replica's, superseded while it was
        # away — are flushed so no address stays double-owned.
        for name in healed:
            agent = self.agents.get(name)
            if agent is None or not hasattr(agent, "bindings"):
                continue
            for binding in sorted(agent.bindings.all_active(),
                                  key=lambda b: str(b.home_address)):
                flushed += self._reconcile(binding.home_address)
        self.sim.trace.emit("binding_shard", "healed",
                            agents=",".join(healed), flushed=flushed)

    def _reconcile(self, home_address: "IPAddress") -> int:
        """Flush all but the newest reachable copy of one binding."""
        holders = []
        for name in sorted(self.agents):
            if not self.reachable(name):
                continue
            agent = self.agents[name]
            if not hasattr(agent, "bindings"):
                continue
            binding = agent.bindings.get(home_address)
            if binding is not None:
                holders.append((binding.registered_at, name, agent))
        if len(holders) <= 1:
            return 0
        holders.sort(key=lambda entry: (entry[0], entry[1]))
        flushed = 0
        for _, _, agent in holders[:-1]:
            if hasattr(agent, "flush_binding"):
                agent.flush_binding(home_address)
                flushed += 1
        return flushed

    def is_down(self, name: str) -> bool:
        """True while the named replica is crashed."""
        return self.agents[name].is_down

    def down_agents(self) -> List[str]:
        """Names of currently crashed replicas, sorted."""
        return sorted(name for name, agent in self.agents.items()
                      if agent.is_down)

    def partitioned_agents(self) -> List[str]:
        """Names of currently partitioned replicas, sorted."""
        return sorted(self._partitioned)
