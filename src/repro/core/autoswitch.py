"""Automatic network selection: Section 6's "when to switch" (extension).

"As for further work on mobile IP, we plan to experiment with techniques
for determining when to switch between networks."  And from Section 4:
"With sufficient warning, for instance, the user or the mobile host can
bring up a newly available wireless interface before the old interface is
disabled" — i.e. the payoff of knowing early is a lossless hot switch.

:class:`ConnectivityManager` is that technique, built from the primitives
the reproduction already has:

* each candidate attachment is an :class:`AttachmentOption` (interface,
  care-of address, subnet, gateway, and a preference score — by default
  the link's bandwidth);
* the manager probes every *up* candidate's gateway with ICMP echoes on a
  fixed interval, from the candidate's own address (local-role traffic);
* a candidate becomes *eligible* after ``up_threshold`` consecutive probe
  successes and *ineligible* after ``down_threshold`` consecutive failures
  — classic hysteresis, so one lost radio packet doesn't bounce the host
  between networks;
* whenever the best eligible candidate differs from the current
  attachment, the manager performs a **hot switch** (both interfaces are
  up by construction — this is exactly the paper's "sufficient warning"
  scenario, and it is lossless).

The manager never brings interfaces up or down itself; discovering that a
device exists is the operator's (or hardware's) job, deciding *when to use
it* is the manager's.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.handoff import DeviceSwitcher, SwitchTimeline
from repro.core.notify import profile_of
from repro.net.addressing import IPAddress, Subnet
from repro.sim.engine import Event
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mobile_host import MobileHost
    from repro.net.interface import NetworkInterface

#: Default probe cadence and hysteresis.
DEFAULT_PROBE_INTERVAL = ms(500)
DEFAULT_UP_THRESHOLD = 2
DEFAULT_DOWN_THRESHOLD = 2
DEFAULT_PROBE_TIMEOUT = ms(400)


@dataclass
class AttachmentOption:
    """One place the mobile host could attach."""

    name: str
    interface: "NetworkInterface"
    care_of: IPAddress
    subnet: Subnet
    gateway: IPAddress
    #: Higher wins among eligible options.  Defaults to link bandwidth, so
    #: "switch to the faster network when it works" falls out naturally.
    score: Optional[float] = None

    # Probe bookkeeping (managed by the ConnectivityManager).
    consecutive_successes: int = 0
    consecutive_failures: int = 0
    eligible: bool = False
    probes_sent: int = 0
    probes_answered: int = 0

    def effective_score(self) -> float:
        """The preference score: explicit, or the link's bandwidth."""
        if self.score is not None:
            return self.score
        return profile_of(self.interface).bandwidth_bps


class ConnectivityManager:
    """Probe candidates, apply hysteresis, switch to the best network."""

    def __init__(self, mobile: "MobileHost", *_shim: int,
                 probe_interval: Optional[int] = None,
                 probe_timeout: Optional[int] = None,
                 up_threshold: Optional[int] = None,
                 down_threshold: Optional[int] = None) -> None:
        if _shim:
            warnings.warn(
                "passing probe knobs positionally to ConnectivityManager is "
                "deprecated; use keyword arguments",
                DeprecationWarning, stacklevel=2)
            shim_values = dict(zip(("probe_interval", "probe_timeout",
                                    "up_threshold", "down_threshold"), _shim))
            probe_interval = probe_interval if probe_interval is not None \
                else shim_values.get("probe_interval")
            probe_timeout = probe_timeout if probe_timeout is not None \
                else shim_values.get("probe_timeout")
            up_threshold = up_threshold if up_threshold is not None \
                else shim_values.get("up_threshold")
            down_threshold = down_threshold if down_threshold is not None \
                else shim_values.get("down_threshold")
        defaults = mobile.config.autoswitch
        self.mobile = mobile
        self.sim = mobile.sim
        self.probe_interval = probe_interval if probe_interval is not None \
            else defaults.probe_interval
        self.probe_timeout = probe_timeout if probe_timeout is not None \
            else defaults.probe_timeout
        self.up_threshold = up_threshold if up_threshold is not None \
            else defaults.up_threshold
        self.down_threshold = down_threshold if down_threshold is not None \
            else defaults.down_threshold
        self.options: List[AttachmentOption] = []
        self.switcher = DeviceSwitcher(mobile)
        self.running = False
        self.switches_performed = 0
        self.failed_switches = 0
        self.on_switch: Optional[Callable[[SwitchTimeline], None]] = None
        self._switching = False
        self._tick_event: Optional[Event] = None

    # ------------------------------------------------------------ provisioning

    def add_option(self, option: AttachmentOption) -> AttachmentOption:
        """Register a candidate attachment for probing."""
        self.options.append(option)
        return option

    def option(self, name: str) -> AttachmentOption:
        """Look a candidate up by name (KeyError if absent)."""
        for candidate in self.options:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no attachment option named {name!r}")

    # ----------------------------------------------------------------- control

    def start(self) -> None:
        """Begin the periodic probe cycle."""
        if self.running:
            return
        self.running = True
        self._tick()

    def stop(self) -> None:
        """Halt probing (the current attachment is left as-is)."""
        self.running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # ------------------------------------------------------------------ probing

    def _tick(self) -> None:
        if not self.running:
            return
        for option in self.options:
            if option.interface.is_up:
                self._probe(option)
            else:
                # A down interface is trivially ineligible.
                option.consecutive_successes = 0
                option.consecutive_failures += 1
                self._apply_hysteresis(option)
        self._tick_event = self.sim.call_later(self.probe_interval, self._tick,
                                               label="connmgr-tick")

    def _probe(self, option: AttachmentOption) -> None:
        option.probes_sent += 1

        def success(rtt: int) -> None:
            option.probes_answered += 1
            option.consecutive_successes += 1
            option.consecutive_failures = 0
            self._apply_hysteresis(option)

        def failure() -> None:
            option.consecutive_failures += 1
            option.consecutive_successes = 0
            self._apply_hysteresis(option)

        # Probe from the candidate's own address: local-role traffic that
        # works whether or not this candidate is the active attachment.
        self.mobile.icmp.ping(option.gateway, on_reply=success,
                              on_timeout=failure, src=option.care_of,
                              timeout=self.probe_timeout, data_bytes=8)

    def _apply_hysteresis(self, option: AttachmentOption) -> None:
        if not option.eligible and option.consecutive_successes >= self.up_threshold:
            option.eligible = True
            self.sim.trace.emit("connmgr", "eligible", option=option.name)
            self._reconsider()
        elif option.eligible and option.consecutive_failures >= self.down_threshold:
            option.eligible = False
            self.sim.trace.emit("connmgr", "ineligible", option=option.name)
            self._reconsider()

    # ----------------------------------------------------------------- deciding

    def best_option(self) -> Optional[AttachmentOption]:
        """Highest-scoring eligible candidate, or None."""
        eligible = [option for option in self.options if option.eligible]
        if not eligible:
            return None
        return max(eligible, key=lambda option: option.effective_score())

    def current_option(self) -> Optional[AttachmentOption]:
        """The candidate matching the active attachment, if any."""
        for option in self.options:
            if option.interface is self.mobile.active_interface \
                    and option.care_of == self.mobile.care_of:
                return option
        return None

    def _reconsider(self) -> None:
        if self._switching:
            return
        best = self.best_option()
        if best is None:
            return
        current = self.current_option()
        if current is best:
            return
        if current is not None and current.eligible \
                and best.effective_score() <= current.effective_score():
            return
        self._switch_to(best)

    def _demote(self, option: AttachmentOption) -> None:
        """Strip an option's eligibility after a failed switch or flap.

        It must re-earn ``up_threshold`` consecutive probe successes, so
        a recovered network promotes itself back without operator help.
        """
        option.eligible = False
        option.consecutive_successes = 0
        self.sim.trace.emit("connmgr", "demoted", option=option.name)

    def _switch_to(self, option: AttachmentOption) -> None:
        if not option.interface.is_up:
            # The candidate died (e.g. an injected flap) between becoming
            # eligible and our decision; demote it and fall back to the
            # next preference instead of crashing the hot switch.
            self._demote(option)
            self._reconsider()
            return
        self._switching = True
        self.sim.trace.emit("connmgr", "switching", option=option.name)

        def done(timeline: SwitchTimeline) -> None:
            self._switching = False
            self.switches_performed += 1
            if not timeline.success:
                self.failed_switches += 1
                self._demote(option)
            self.sim.trace.emit("connmgr", "switched", option=option.name,
                                success=timeline.success,
                                total_ms=timeline.total / 1_000_000)
            if self.on_switch is not None:
                self.on_switch(timeline)
            # Conditions may have changed while we were busy.
            self._reconsider()

        self.switcher.hot_switch(option.interface, option.care_of,
                                 option.subnet, option.gateway, on_done=done)
