"""TCP congestion-control sweep (x6): modern transports over mobility.

The paper keeps long-lived TCP sessions alive across network switches by
keeping the connection's addresses fixed (the mobile host's end is always
the home address) and letting ordinary retransmission recover whatever a
handoff loses.  "Ordinary retransmission" in 1996 meant Tahoe-style
timeout recovery; this experiment measures how much a modern transport
changes the picture on the same Figure-5 testbed.

The sweep is congestion control (``tahoe`` / ``reno`` / ``cubic``) ×
Gilbert-Elliott bursty loss on the department segment × a mid-stream
handoff from Ethernet to the Metricom radio.  Tahoe runs the seed's
legacy stack (no SACK, go-back-N); Reno and CUBIC run with SACK enabled
(``Config.tcp_sack``), exercising fast retransmit and scoreboard-driven
hole repair.  Reported per cell: application goodput, retransmissions
(total / fast / RTO expirations), the peak congestion window, and how
long after the handoff the first data arrived at the new attachment
(post-handoff recovery time).

Every cell is one :class:`~repro.parallel.Trial` whose simulator seed is
derived from the cell index, so reports are byte-identical at any
``--jobs`` value.  The trial itself is built through the
:class:`~repro.api.Scenario` facade — ``with_config`` selects the
transport, ``with_faults`` arms the loss phase, ``with_step`` performs
the handoff — making x6 the reference user of the redesigned API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api import Scenario
from repro.config import Config, DEFAULT_CONFIG
from repro.experiments.harness import format_table
from repro.faults import FaultPlan, GilbertElliottPhase
from repro.net.host import Host
from repro.net.packet import AppData
from repro.net.tcp import TCPConnection
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.units import ms, s
from repro.testbed.topology import Testbed
from repro.workloads.tcp_session import SESSION_PORT, TcpBulkSender

#: Sweep grid.
DEFAULT_CCS = ("tahoe", "reno", "cubic")
DEFAULT_LOSS_RATES = (0.0, 0.25)
DEFAULT_HANDOFFS = (False, True)

#: One 256-byte chunk every 20 ms: ~100 kbit/s offered load — light for
#: the Ethernet, beyond the radio's 34 kbit/s, so the handoff also flips
#: the session from application-limited to window-limited.
SEND_INTERVAL = ms(20)
CHUNK_BYTES = 256

#: The Gilbert-Elliott phase runs on the department segment (the name is
#: fixed by the testbed builder) while the session is at full tilt.
DEPT_LINK = "net-36.8"
LOSS_AT = s(3)
LOSS_DURATION = s(8)

#: Make-before-break handoff: radio registers first, the Ethernet card is
#: pulled shortly after (the paper's seamless-switch discipline).
HANDOFF_AT = s(10)
UNPLUG_AFTER = ms(300)

HORIZON = s(20)
DRAIN = s(4)
CWND_SAMPLE_INTERVAL = ms(100)


class TimedTcpReceiver:
    """Mobile-host side: accepts the session, timestamps every arrival."""

    def __init__(self, host: Host, port: int = SESSION_PORT) -> None:
        self.host = host
        self.sim = host.sim
        self.bytes_total = 0
        #: (sim time ns, payload bytes) per application delivery.
        self.arrivals: List[Tuple[int, int]] = []
        self.connection: Optional[TCPConnection] = None
        self._listener = host.tcp.listen(port, self._on_connection)

    def _on_connection(self, conn: TCPConnection) -> None:
        self.connection = conn
        conn.on_data = self._on_data

    def _on_data(self, data: AppData) -> None:
        self.bytes_total += data.size_bytes
        self.arrivals.append((self.sim.now, data.size_bytes))

    def first_arrival_after(self, when: int) -> Optional[int]:
        """Timestamp of the first delivery at or after *when*, or None."""
        for at, _ in self.arrivals:
            if at >= when:
                return at
        return None


class CwndSampler:
    """Samples one connection's congestion window on a fixed cadence."""

    def __init__(self, conn: TCPConnection, interval: int = CWND_SAMPLE_INTERVAL,
                 until: int = HORIZON) -> None:
        self.conn = conn
        self.interval = interval
        self.until = until
        self.samples: List[int] = []
        conn.sim.call_later(interval, self._tick, label="cwnd-sample")

    def _tick(self) -> None:
        self.samples.append(self.conn.cwnd)
        if self.conn.sim.now + self.interval <= self.until:
            self.conn.sim.call_later(self.interval, self._tick,
                                     label="cwnd-sample")

    @property
    def cwnd_max(self) -> int:
        return max(self.samples) if self.samples else 0

    @property
    def cwnd_final(self) -> int:
        return self.samples[-1] if self.samples else 0


@dataclass
class TcpCcPoint:
    """One sweep cell's outcome."""

    cc: str
    loss_rate: float
    handoff: bool
    chunks_sent: int
    goodput_kbps: float
    retransmits: int
    fast_retransmits: int
    rto_expirations: int
    cwnd_max: int
    recovery_ms: float  # -1 when the cell has no handoff


@dataclass
class TcpCcReport:
    points: List[TcpCcPoint] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the sweep as a plain-text table."""
        rows = [(point.cc,
                 f"{point.loss_rate:g}",
                 "yes" if point.handoff else "no",
                 f"{point.goodput_kbps:.1f}",
                 point.retransmits,
                 point.fast_retransmits,
                 point.rto_expirations,
                 point.cwnd_max,
                 f"{point.recovery_ms:.0f}" if point.recovery_ms >= 0 else "-")
                for point in self.points]
        table = format_table(("cc", "loss rate", "handoff", "goodput kbps",
                              "retrans", "fast rtx", "rtos", "cwnd max",
                              "recovery ms"),
                             rows)
        return ("TCP congestion-control sweep: Tahoe (legacy) vs Reno vs "
                "CUBIC (+SACK)\nover bursty loss and an Ethernet-to-radio "
                "handoff\n" + table)


def run_tcp_cc_trial(cc: str, loss_rate: float, handoff: bool, seed: int,
                     config: Config = DEFAULT_CONFIG) -> dict:
    """One sweep cell as a pure trial: (params, seed) -> plain data."""
    session: dict = {}

    def start_session(testbed: Testbed) -> dict:
        testbed.visit_dept()
        receiver = TimedTcpReceiver(testbed.mobile)
        sender = TcpBulkSender(testbed.correspondent,
                               testbed.addresses.mh_home,
                               interval=SEND_INTERVAL,
                               chunk_bytes=CHUNK_BYTES)
        sender.start()
        sampler = CwndSampler(sender.connection)
        testbed.sim.call_later(HORIZON, sender.stop, label="tcp-cc-stop")
        session.update(receiver=receiver, sender=sender, sampler=sampler)
        return session

    scenario = (Scenario(seed=seed, config=config)
                # Tahoe is measured as the seed shipped it: no SACK.  The
                # modern stacks get the full treatment.
                .with_config(tcp_congestion_control=cc,
                             tcp_sack=(cc != "tahoe"))
                .with_testbed(with_remote_correspondent=False)
                .with_workload(start_session, name="session"))
    if loss_rate > 0.0:
        scenario.with_faults(FaultPlan.of(GilbertElliottPhase(
            at=LOSS_AT, link=DEPT_LINK, duration=LOSS_DURATION,
            p_good_bad=loss_rate, p_bad_good=0.3,
            loss_good=0.0, loss_bad=0.85)))
    if handoff:
        scenario.with_step(HANDOFF_AT,
                           lambda tb: tb.connect_radio(register=True),
                           label="handoff-radio-up")
        scenario.with_step(HANDOFF_AT + UNPLUG_AFTER,
                           lambda tb: tb.unplug_ethernet(),
                           label="handoff-unplug-eth")
    result = scenario.run(duration=HORIZON + DRAIN)

    testbed = result.testbed
    receiver = session["receiver"]
    sender = session["sender"]
    sampler = session["sampler"]
    goodput_kbps = receiver.bytes_total * 8 / (HORIZON / 1e9) / 1e3
    recovery_ms = -1.0
    if handoff:
        # Measured from the moment the old attachment disappears: data
        # arriving during the make-before-break overlap doesn't count.
        cutover = HANDOFF_AT + UNPLUG_AFTER
        first = receiver.first_arrival_after(cutover)
        if first is not None:
            recovery_ms = (first - cutover) / 1e6
    metrics = result.sim.metrics
    sender_host = testbed.correspondent.name
    return {
        "cc": cc,
        "loss_rate": loss_rate,
        "handoff": handoff,
        "chunks_sent": sender.sent_chunks,
        "goodput_kbps": goodput_kbps,
        "retransmits": metrics.counter("tcp", "retransmits",
                                       host=sender_host).value,
        "fast_retransmits": sender.connection.fast_retransmits,
        "rto_expirations": metrics.counter("tcp", "rto_expirations",
                                           host=sender_host).value,
        "cwnd_max": sampler.cwnd_max,
        "recovery_ms": recovery_ms,
    }


def build_tcp_cc_trials(ccs: Sequence[str], loss_rates: Sequence[float],
                        handoffs: Sequence[bool], seed: int,
                        config: Config) -> List[Trial]:
    """One trial per grid cell, seed = base + cell index."""
    trials = []
    index = 0
    for cc in ccs:
        for loss_rate in loss_rates:
            for handoff in handoffs:
                trials.append(Trial(
                    "repro.experiments.exp_tcp_cc:run_tcp_cc_trial",
                    dict(cc=cc, loss_rate=loss_rate, handoff=handoff,
                         seed=seed + index, config=config)))
                index += 1
    return trials


def merge_tcp_cc_trials(results: List[dict]) -> TcpCcReport:
    """Reassemble ordered grid results into the report."""
    report = TcpCcReport()
    for result in results:
        report.points.append(TcpCcPoint(**result))
    return report


def run_tcp_cc_experiment(ccs: Sequence[str] = DEFAULT_CCS,
                          loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
                          handoffs: Sequence[bool] = DEFAULT_HANDOFFS,
                          seed: int = 113,
                          config: Config = DEFAULT_CONFIG,
                          jobs: int = 1,
                          runner: Optional[ParallelRunner] = None
                          ) -> TcpCcReport:
    """Sweep cc × loss × handoff; each cell is one trial."""
    trials = build_tcp_cc_trials(ccs, loss_rates, handoffs, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_tcp_cc_trials(results)


if __name__ == "__main__":  # pragma: no cover
    print(run_tcp_cc_experiment().format_report())
