"""The Section 4 same-subnet address switch experiment.

"For these tests, a correspondent host continuously sends a UDP packet to
the mobile host every 10 milliseconds, and the mobile host echoes the
packet back.  We then measure the number of packets that were lost during
the interval in which the mobile host switches addresses. ...  Out of the
twenty iterations of this experiment, sixteen tests showed no packet loss,
and the other four tests lost one packet each.  This indicates that the
interval during which packets can be lost is under 10 ms."

Loss here is a *phase* effect: the vulnerable window (old address dead ->
home agent binding updated) is a few milliseconds, so whether a 10 ms probe
lands inside it depends on where the switch starts relative to the probe
ticks.  The harness spreads switch start times uniformly across one probe
interval, which samples the phase deterministically — the paper got the
same sampling for free from real-world scheduling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.handoff import AddressSwitcher, SwitchTimeline
from repro.experiments.harness import format_histogram, histogram, spread_phases
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

#: Paper outcome: {packets lost: iterations}.
PAPER_HISTOGRAM = {0: 16, 1: 4}
PAPER_ITERATIONS = 20
PAPER_PROBE_INTERVAL_MS = 10


@dataclass
class SameSubnetReport:
    """Loss histogram plus switch statistics."""

    iterations: int
    probe_interval_ms: float
    losses: List[int] = field(default_factory=list)
    switch_totals_ms: List[float] = field(default_factory=list)

    @property
    def loss_histogram(self) -> Dict[int, int]:
        """Losses as {packets lost: iterations}."""
        return histogram(self.losses)

    @property
    def max_loss(self) -> int:
        """Worst single-iteration loss."""
        return max(self.losses) if self.losses else 0

    @property
    def zero_loss_runs(self) -> int:
        """How many iterations lost nothing."""
        return sum(1 for loss in self.losses if loss == 0)

    def format_report(self) -> str:
        """Render the histogram and the paper comparison."""
        mean_total = (sum(self.switch_totals_ms) / len(self.switch_totals_ms)
                      if self.switch_totals_ms else 0.0)
        lines = [
            f"Same-subnet address switch ({self.iterations} iterations, "
            f"UDP probe every {self.probe_interval_ms:g} ms)",
            format_histogram(self.loss_histogram),
            f"zero-loss runs: {self.zero_loss_runs}/{self.iterations} "
            f"(paper: {PAPER_HISTOGRAM[0]}/{PAPER_ITERATIONS})",
            f"maximum loss in any run: {self.max_loss} "
            f"(paper: {max(PAPER_HISTOGRAM)})",
            f"mean switch time: {mean_total:.2f} ms -> loss interval is "
            f"under {self.probe_interval_ms:g} ms, as the paper concludes",
        ]
        return "\n".join(lines)


def run_same_subnet_trial(index: int, iterations: int, seed: int,
                          probe_interval: int,
                          config: Config = DEFAULT_CONFIG) -> dict:
    """One independent switch measurement: fresh testbed, one switch.

    Pure trial unit: ``(params, seed) -> plain data``.  *seed* is the
    iteration's own seed (the builder derives it); *index*/*iterations*
    only position the switch phase within the probe interval.
    """
    switch_time = spread_phases(iterations, probe_interval,
                                base_ns=ms(1500))[index]
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    testbed.visit_dept()
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=probe_interval)
    sim.run_for(ms(500))  # initial registration settles
    stream.start()

    timelines: List[SwitchTimeline] = []
    sim.call_at(switch_time,
                lambda: AddressSwitcher(testbed.mobile).switch_address(
                    addresses.mh_dept_care_of_2,
                    on_done=timelines.append),
                label="exp-switch")
    sim.run(until=ms(2500))
    stream.stop()
    sim.run_for(ms(1000))  # let stragglers drain before counting

    if not timelines or not timelines[0].success:
        raise RuntimeError(f"iteration {index}: switch failed")
    return {"loss": stream.lost_count(),
            "switch_total_ms": timelines[0].total / 1_000_000}


def build_same_subnet_trials(iterations: int, seed: int,
                             probe_interval: int,
                             config: Config) -> List[Trial]:
    """One trial per iteration; seed = base + index, as the serial loop did."""
    return [Trial("repro.experiments.exp_same_subnet:run_same_subnet_trial",
                  dict(index=index, iterations=iterations, seed=seed + index,
                       probe_interval=probe_interval, config=config))
            for index in range(iterations)]


def merge_same_subnet_trials(results: List[dict], iterations: int,
                             probe_interval: int) -> SameSubnetReport:
    """Reassemble ordered trial results into the report."""
    report = SameSubnetReport(iterations=iterations,
                              probe_interval_ms=probe_interval / 1_000_000)
    for result in results:
        report.losses.append(result["loss"])
        report.switch_totals_ms.append(result["switch_total_ms"])
    return report


def run_same_subnet_experiment(iterations: int = 20, seed: int = 11,
                               probe_interval: int = ms(10),
                               config: Config = DEFAULT_CONFIG,
                               jobs: int = 1,
                               runner: Optional[ParallelRunner] = None
                               ) -> SameSubnetReport:
    """Reproduce the twenty-iteration same-subnet switch measurement.

    Each iteration uses a fresh testbed (independent runs, like the
    paper's), starts the 10 ms echo stream, switches the care-of address
    at a phase-spread instant, and counts end-to-end echo losses.
    Iterations are independent trials, so ``jobs=N`` shards them across
    workers with byte-identical results.
    """
    trials = build_same_subnet_trials(iterations, seed, probe_interval, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_same_subnet_trials(results, iterations, probe_interval)


@dataclass
class ProbeSweepReport:
    """Loss vs probe spacing: the loss *window* made visible.

    Section 4: "No matter how small this interval is, it is always
    possible for some packet in flight to arrive during this time" — the
    switch opens a fixed vulnerable window, so the number of packets it
    catches scales with how densely packets are flying.  Sweeping the
    probe spacing turns the invisible window into a measurable slope.
    """

    iterations_per_point: int
    points: List[tuple] = field(default_factory=list)  # (interval_ms, mean)

    def format_report(self) -> str:
        """Render the interval-vs-loss table."""
        from repro.experiments.harness import format_table

        rows = [(f"{interval:g}", f"{mean:.2f}")
                for interval, mean in self.points]
        table = format_table(("probe interval ms", "mean packets lost"),
                             rows)
        return ("Loss-window sweep: same-subnet switch vs probe spacing\n"
                + table)

    def estimated_window_ms(self) -> float:
        """The implied loss window: mean loss x spacing, averaged."""
        estimates = [mean * interval for interval, mean in self.points
                     if mean > 0]
        if not estimates:
            return 0.0
        return sum(estimates) / len(estimates)


def run_probe_interval_sweep(intervals_ms=(2, 5, 10, 20),
                             iterations: int = 10, seed: int = 211,
                             config: Config = DEFAULT_CONFIG,
                             jobs: int = 1) -> ProbeSweepReport:
    """Run the same-subnet switch at several probe densities."""
    report = ProbeSweepReport(iterations_per_point=iterations)
    for index, interval_ms in enumerate(intervals_ms):
        sub = run_same_subnet_experiment(iterations=iterations,
                                         seed=seed + index * 100,
                                         probe_interval=ms(interval_ms),
                                         config=config, jobs=jobs)
        mean_loss = sum(sub.losses) / len(sub.losses)
        report.points.append((float(interval_ms), mean_loss))
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run_same_subnet_experiment().format_report())
    print()
    print(run_probe_interval_sweep().format_report())
