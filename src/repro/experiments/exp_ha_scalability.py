"""Home-agent scalability: testing the paper's closing performance claim.

"The data shows that the software overhead in the registration process is
small, and the home agent should be able to deal with a large number of
mobile hosts simultaneously." (Section 4.)

This experiment makes that claim quantitative: N mobile hosts, all homed
on net 36.135 and all visiting net 36.8, fire their registrations at the
same instant.  The home agent serializes processing (one CPU), so the
question is how registration latency degrades with N — linearly in the
~1.5 ms per-request processing cost, which stays comfortably under a
typical binding lifetime even for hundreds of hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import Config, DEFAULT_CONFIG
from repro.core.mobile_host import MobileHost
from repro.core.registration import RegistrationOutcome
from repro.experiments.harness import Stats, format_table, summarize_ms
from repro.net.interface import EthernetInterface, InterfaceState
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed

DEFAULT_FLEET_SIZES = (1, 5, 10, 25, 50)


@dataclass
class FleetResult:
    fleet_size: int
    accepted: int
    latency: Stats


@dataclass
class HAScalabilityReport:
    results: List[FleetResult] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the latency-vs-fleet-size table."""
        rows = [(result.fleet_size, result.accepted,
                 result.latency.format_ms(),
                 f"{result.latency.maximum:.2f}")
                for result in self.results]
        table = format_table(("mobile hosts", "accepted",
                              "reg latency ms: mean (std)", "max ms"), rows)
        return ("Home-agent scalability: simultaneous registrations "
                "(Section 4's closing claim)\n" + table)


def _run_fleet(fleet_size: int, seed: int, config: Config) -> FleetResult:
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    agent = testbed.home_agent

    fleet: List[MobileHost] = []
    for index in range(fleet_size):
        home = addresses.home_net.host(100 + index)
        mobile = MobileHost(sim, f"mh{index}", home_address=home,
                            home_subnet=addresses.home_net,
                            home_agent=agent.address, config=config)
        iface = EthernetInterface(sim, f"eth0.mh{index}",
                                  testbed.macs.allocate(), config)
        mobile.add_interface(iface)
        iface.attach(testbed.dept_segment)
        iface.state = InterfaceState.UP
        mobile.home_interface = iface
        agent.serve(home)
        care_of = addresses.dept_net.host(100 + index)
        mobile.start_visiting(iface, care_of, addresses.dept_net,
                              addresses.router_dept, register=False)
        fleet.append(mobile)

    outcomes: Dict[int, RegistrationOutcome] = {}

    def fire(index: int) -> None:
        fleet[index].register_current(
            on_registered=lambda outcome, index=index:
            outcomes.__setitem__(index, outcome))

    # Everyone registers at the same instant.
    for index in range(fleet_size):
        sim.call_at(ms(100), lambda index=index: fire(index))
    sim.run_for(s(30))

    latencies = [outcome.round_trip for outcome in outcomes.values()
                 if outcome.accepted]
    return FleetResult(fleet_size=fleet_size,
                       accepted=len(latencies),
                       latency=summarize_ms(latencies))


def run_ha_scalability_experiment(fleet_sizes=DEFAULT_FLEET_SIZES,
                                  seed: int = 83,
                                  config: Config = DEFAULT_CONFIG
                                  ) -> HAScalabilityReport:
    report = HAScalabilityReport()
    for index, fleet_size in enumerate(fleet_sizes):
        report.results.append(_run_fleet(fleet_size, seed + index, config))
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run_ha_scalability_experiment().format_report())
