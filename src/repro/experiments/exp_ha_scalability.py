"""Home-agent scalability: testing the paper's closing performance claim.

"The data shows that the software overhead in the registration process is
small, and the home agent should be able to deal with a large number of
mobile hosts simultaneously." (Section 4.)

This experiment makes that claim quantitative: N mobile hosts, all homed
on net 36.135 and all visiting net 36.8, fire their registrations at the
same instant.  The home agent serializes processing (one CPU), so the
question is how registration latency degrades with N — linearly in the
~1.5 ms per-request processing cost, which stays comfortably under a
typical binding lifetime even for hundreds of hosts.

Two harnesses share the fleet machinery:

* :func:`run_ha_scalability_experiment` — the original single-agent
  sweep (1–50 hosts, one simulation per fleet size).
* :func:`run_ha_fleet_sweep` — the production-scale extension: fleets of
  100–1000 hosts **sharded across workers**, each shard a replica home
  agent serving ~100 hosts in its own simulation (the /24 home subnet
  bounds a single agent's address pool at ~150 hosts — sharding is how a
  real deployment would scale past it).  Per-shard latency ``Stats``
  merge via Welford partials into fleet-level numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.mobile_host import MobileHost
from repro.core.registration import RegistrationOutcome
from repro.experiments.harness import (
    Stats,
    format_table,
    merge_stats,
    summarize_ms,
)
from repro.net.interface import EthernetInterface, InterfaceState
from repro.parallel import (
    ParallelRunner,
    Trial,
    balanced_shards,
    run_trials,
    spawn_seed,
)
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed

DEFAULT_FLEET_SIZES = (1, 5, 10, 25, 50)
#: The production-scale sweep (run via experiment id ``x4``).
LARGE_FLEET_SIZES = (100, 250, 500, 1000)
#: Hosts per shard in the large sweep: keeps each replica agent's pool
#: well inside the /24 home subnet (indices 100..254) and the shards
#: balanced across a typical worker count.
DEFAULT_SHARD_HOSTS = 100


@dataclass
class FleetResult:
    fleet_size: int
    accepted: int
    latency: Stats


@dataclass
class HAScalabilityReport:
    results: List[FleetResult] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the latency-vs-fleet-size table."""
        rows = [(result.fleet_size, result.accepted,
                 result.latency.format_ms(),
                 f"{result.latency.maximum:.2f}")
                for result in self.results]
        table = format_table(("mobile hosts", "accepted",
                              "reg latency ms: mean (std)", "max ms"), rows)
        return ("Home-agent scalability: simultaneous registrations "
                "(Section 4's closing claim)\n" + table)


def _run_fleet(fleet_size: int, seed: int, config: Config) -> FleetResult:
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    agent = testbed.home_agent

    fleet: List[MobileHost] = []
    for index in range(fleet_size):
        home = addresses.home_net.host(100 + index)
        mobile = MobileHost(sim, f"mh{index}", home_address=home,
                            home_subnet=addresses.home_net,
                            home_agent=agent.address, config=config)
        iface = EthernetInterface(sim, f"eth0.mh{index}",
                                  testbed.macs.allocate(), config)
        mobile.add_interface(iface)
        iface.attach(testbed.dept_segment)
        iface.state = InterfaceState.UP
        mobile.home_interface = iface
        agent.serve(home)
        care_of = addresses.dept_net.host(100 + index)
        mobile.start_visiting(iface, care_of, addresses.dept_net,
                              addresses.router_dept, register=False)
        fleet.append(mobile)

    outcomes: Dict[int, RegistrationOutcome] = {}

    def fire(index: int) -> None:
        fleet[index].register_current(
            on_registered=lambda outcome, index=index:
            outcomes.__setitem__(index, outcome))

    # Everyone registers at the same instant.
    for index in range(fleet_size):
        sim.call_at(ms(100), lambda index=index: fire(index))
    sim.run_for(s(30))

    latencies = [outcome.round_trip for outcome in outcomes.values()
                 if outcome.accepted]
    return FleetResult(fleet_size=fleet_size,
                       accepted=len(latencies),
                       latency=summarize_ms(latencies))


def run_fleet_trial(fleet_size: int, seed: int,
                    config: Config = DEFAULT_CONFIG) -> dict:
    """One fleet (or one shard of a larger fleet) as a pure trial.

    Returns the accepted count plus the latency summary as plain data —
    shards ship their partial ``Stats``, not raw samples, and the merge
    step combines them exactly (Welford partial merge).
    """
    result = _run_fleet(fleet_size, seed, config)
    return {"fleet_size": result.fleet_size,
            "accepted": result.accepted,
            "latency": {"count": result.latency.count,
                        "mean": result.latency.mean,
                        "std": result.latency.std,
                        "minimum": result.latency.minimum,
                        "maximum": result.latency.maximum}}


def build_ha_scalability_trials(fleet_sizes, seed: int,
                                config: Config) -> List[Trial]:
    """One trial per fleet size, seed = base + index."""
    return [Trial("repro.experiments.exp_ha_scalability:run_fleet_trial",
                  dict(fleet_size=fleet_size, seed=seed + index,
                       config=config))
            for index, fleet_size in enumerate(fleet_sizes)]


def merge_ha_scalability_trials(results: List[dict]) -> HAScalabilityReport:
    """Reassemble per-fleet trial results into the report."""
    report = HAScalabilityReport()
    for result in results:
        report.results.append(FleetResult(
            fleet_size=result["fleet_size"],
            accepted=result["accepted"],
            latency=Stats(**result["latency"])))
    return report


def run_ha_scalability_experiment(fleet_sizes=DEFAULT_FLEET_SIZES,
                                  seed: int = 83,
                                  config: Config = DEFAULT_CONFIG,
                                  jobs: int = 1,
                                  runner: Optional[ParallelRunner] = None
                                  ) -> HAScalabilityReport:
    """The original sweep: one simulation per fleet size."""
    trials = build_ha_scalability_trials(fleet_sizes, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_ha_scalability_trials(results)


# --------------------------------------------------------------- large fleets


@dataclass
class ShardedFleetResult:
    """One fleet size of the large sweep, merged across its shards."""

    fleet_size: int
    shards: int
    accepted: int
    latency: Stats


@dataclass
class HAFleetSweepReport:
    """Fleets of 100-1000 hosts, each sharded across replica agents."""

    shard_hosts: int
    results: List[ShardedFleetResult] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the fleet-size vs latency table, with shard counts."""
        rows = [(result.fleet_size, result.shards, result.accepted,
                 result.latency.format_ms(),
                 f"{result.latency.maximum:.2f}")
                for result in self.results]
        table = format_table(
            ("mobile hosts", "HA shards", "accepted",
             "reg latency ms: mean (std)", "max ms"), rows)
        return ("Home-agent fleet sweep: 100-1000 hosts sharded across "
                f"replica agents ({self.shard_hosts} hosts/shard)\n" + table)


def build_ha_fleet_sweep_trials(fleet_sizes, seed: int, config: Config,
                                shard_hosts: int = DEFAULT_SHARD_HOSTS
                                ) -> List[Trial]:
    """Shard every fleet into ~*shard_hosts* chunks, one trial per shard.

    Shard seeds are ``spawn_seed(base, fleet_index, shard_index)`` —
    a pure function of position, so worker count never changes them.
    """
    trials: List[Trial] = []
    for fleet_index, fleet_size in enumerate(fleet_sizes):
        for shard_index, shard_size in enumerate(
                balanced_shards(fleet_size, shard_hosts)):
            trials.append(Trial(
                "repro.experiments.exp_ha_scalability:run_fleet_trial",
                dict(fleet_size=shard_size,
                     seed=spawn_seed(seed, fleet_index, shard_index),
                     config=config)))
    return trials


def merge_ha_fleet_sweep_trials(results: List[dict], fleet_sizes,
                                shard_hosts: int = DEFAULT_SHARD_HOSTS
                                ) -> HAFleetSweepReport:
    """Fold per-shard partial Stats into fleet-level results, in order."""
    report = HAFleetSweepReport(shard_hosts=shard_hosts)
    cursor = iter(results)
    for fleet_size in fleet_sizes:
        shard_sizes = balanced_shards(fleet_size, shard_hosts)
        shard_results = [next(cursor) for _ in shard_sizes]
        report.results.append(ShardedFleetResult(
            fleet_size=fleet_size,
            shards=len(shard_sizes),
            accepted=sum(result["accepted"] for result in shard_results),
            latency=merge_stats([Stats(**result["latency"])
                                 for result in shard_results])))
    return report


def run_ha_fleet_sweep(fleet_sizes=LARGE_FLEET_SIZES, seed: int = 97,
                       config: Config = DEFAULT_CONFIG,
                       shard_hosts: int = DEFAULT_SHARD_HOSTS,
                       jobs: int = 1,
                       runner: Optional[ParallelRunner] = None
                       ) -> HAFleetSweepReport:
    """The production-scale extension: 100-1000 hosts per fleet.

    Each shard is an independent simulation of a replica home agent
    serving its slice of the fleet; ``jobs=N`` runs shards across
    workers and the merge is byte-identical at any worker count.
    """
    trials = build_ha_fleet_sweep_trials(fleet_sizes, seed, config,
                                         shard_hosts)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_ha_fleet_sweep_trials(results, fleet_sizes, shard_hosts)


if __name__ == "__main__":  # pragma: no cover
    print(run_ha_scalability_experiment().format_report())
