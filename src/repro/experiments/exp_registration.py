"""Figure 7: the registration time-line.

"We have also collected data to break down the time in each step of the
mobile host's switch to a new address and its registration with the home
agent ...  The measurement is performed with the mobile host registering a
new IP address on the same Ethernet subnet.  The data reflects the average
of 10 tests."

Paper numbers (means):

* total switch (configure + route change + registration + post): 7.39 ms
* registration request -> reply latency: 4.79 ms
* home-agent processing (request received -> reply sent): 1.48 ms

The harness drives :class:`repro.core.handoff.AddressSwitcher` ten times,
alternating between two addresses on net 36.8, and reports per-stage mean
and standard deviation exactly like the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.handoff import (
    STAGE_CONFIGURE,
    STAGE_POST,
    STAGE_REGISTRATION,
    STAGE_ROUTE_UPDATE,
    AddressSwitcher,
    SwitchTimeline,
)
from repro.experiments.harness import Stats, format_table, summarize_ms
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms
from repro.testbed import build_testbed

#: Paper values, milliseconds (for EXPERIMENTS.md comparisons).
PAPER_TOTAL_MS = 7.39
PAPER_REQUEST_REPLY_MS = 4.79
PAPER_HA_PROCESSING_MS = 1.48


@dataclass
class RegistrationReport:
    """Per-stage statistics over all iterations, milliseconds."""

    iterations: int
    stages: Dict[str, Stats] = field(default_factory=dict)
    request_reply: Stats = None  # type: ignore[assignment]
    ha_processing: Stats = None  # type: ignore[assignment]
    total: Stats = None  # type: ignore[assignment]

    def format_report(self) -> str:
        """Render the Figure 7 table with paper columns."""
        rows = [
            ("configure interface", self.stages[STAGE_CONFIGURE].format_ms(), "-"),
            ("change route table", self.stages[STAGE_ROUTE_UPDATE].format_ms(), "-"),
            ("registration request -> reply", self.request_reply.format_ms(),
             f"{PAPER_REQUEST_REPLY_MS:.2f}"),
            ("  of which: home agent processing", self.ha_processing.format_ms(),
             f"{PAPER_HA_PROCESSING_MS:.2f}"),
            ("post-registration", self.stages[STAGE_POST].format_ms(), "-"),
            ("TOTAL switch", self.total.format_ms(),
             f"{PAPER_TOTAL_MS:.2f}"),
        ]
        table = format_table(
            ("step", "measured ms: mean (std)", "paper ms"), rows)
        return (f"Figure 7 — registration time-line "
                f"(average of {self.iterations} tests)\n{table}")


def run_registration_trial(iterations: int, seed: int,
                           config: Config = DEFAULT_CONFIG) -> dict:
    """The whole Figure 7 time-line as one trial, plain-data out.

    The iterations share one testbed (each switch starts from the state
    the previous one left), so this experiment is a *single* sequential
    trial — the parallel runner cannot split it, but can overlap it with
    other experiments' trials.
    """
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    testbed.visit_dept()
    sim.run_for(ms(2000))  # settle initial registration

    switcher = AddressSwitcher(testbed.mobile)
    timelines: List[SwitchTimeline] = []
    candidates = [addresses.mh_dept_care_of_2, addresses.mh_dept_care_of]

    for index in range(iterations):
        target = candidates[index % 2]
        done: List[SwitchTimeline] = []
        switcher.switch_address(target, on_done=done.append)
        sim.run_for(ms(2000))
        if not done or not done[0].success:
            raise RuntimeError(f"registration iteration {index} failed")
        timelines.append(done[0])

    stage_durations = {
        stage_name: [timeline.duration_of(stage_name)
                     for timeline in timelines]
        for stage_name in (STAGE_CONFIGURE, STAGE_ROUTE_UPDATE,
                           STAGE_REGISTRATION, STAGE_POST)
    }
    return {
        "stages": stage_durations,
        "request_reply": [timeline.registration_round_trip
                          for timeline in timelines],
        "total": [timeline.total for timeline in timelines],
        "ha_processing": _ha_processing_times(
            sim, [t.registration.reply.identification for t in timelines
                  if t.registration and t.registration.reply]),
    }


def build_registration_trials(iterations: int, seed: int,
                              config: Config) -> List[Trial]:
    """One sequential trial (the iterations share a testbed)."""
    return [Trial("repro.experiments.exp_registration:run_registration_trial",
                  dict(iterations=iterations, seed=seed, config=config))]


def merge_registration_trials(results: List[dict],
                              iterations: int) -> RegistrationReport:
    """Summarize the single trial's raw nanosecond samples."""
    (result,) = results
    report = RegistrationReport(iterations=iterations)
    for stage_name, samples in result["stages"].items():
        report.stages[stage_name] = summarize_ms(samples)
    report.request_reply = summarize_ms(result["request_reply"])
    report.total = summarize_ms(result["total"])
    report.ha_processing = summarize_ms(result["ha_processing"])
    return report


def run_registration_experiment(iterations: int = 10, seed: int = 7,
                                config: Config = DEFAULT_CONFIG,
                                jobs: int = 1,
                                runner: Optional[ParallelRunner] = None
                                ) -> RegistrationReport:
    """Reproduce Figure 7.

    One testbed; the mobile host flips between two care-of addresses on
    net 36.8 *iterations* times.  Home-agent processing time is read from
    the registration trace (``ha_received`` -> ``ha_reply``), matching how
    the paper instrumented the home agent itself.
    """
    trials = build_registration_trials(iterations, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_registration_trials(results, iterations)


def _ha_processing_times(sim: Simulator, idents: List[int]) -> List[int]:
    """HA-side request-received -> reply-sent deltas, from the trace."""
    received = {record["ident"]: record.time
                for record in sim.trace.select("registration", "ha_received")}
    replied = {record["ident"]: record.time
               for record in sim.trace.select("registration", "ha_reply")}
    out = []
    for ident in idents:
        if ident in received and ident in replied:
            out.append(replied[ident] - received[ident])
    return out


if __name__ == "__main__":  # pragma: no cover
    print(run_registration_experiment().format_report())
