"""Figure 6: device switching overhead.

"The second experiment measures the disruption when switching between two
types of devices, both from wired to wireless and from wireless to wired.
We further subdivide this latter experiment to distinguish between cold
switching and hot switching. ...  For these tests the correspondent host
sends a UDP packet every 250 milliseconds ...  Figure 6 shows our results
for this second set of experiments, after running each experiment 10
times."

Paper shape: cold switches lose packets over an interval "generally less
than 1.25 seconds" (so up to ~5 packets at 250 ms spacing), dominated by
bringing up the new interface; hot switches "usually see no packet loss"
(one observed loss was the radio itself dropping a packet).

Four cases, ten iterations each, loss histograms per case — exactly the
figure's bar chart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.handoff import DeviceSwitcher, SwitchTimeline
from repro.experiments.harness import format_histogram, histogram
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import Testbed, build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

#: Probe spacing: "we chose the 250 ms interval because the round-trip time
#: between the home agent and the mobile host through the radio interface
#: is 200~250 ms".
PROBE_INTERVAL = ms(250)
PAPER_ITERATIONS = 10
#: Paper: cold-switch loss interval is generally under 1.25 s.
PAPER_COLD_OUTAGE_BOUND_MS = 1250.0


class SwitchCase(enum.Enum):
    """The four bars of Figure 6."""

    COLD_WIRED_TO_WIRELESS = "cold ethernet->radio"
    COLD_WIRELESS_TO_WIRED = "cold radio->ethernet"
    HOT_WIRED_TO_WIRELESS = "hot ethernet->radio"
    HOT_WIRELESS_TO_WIRED = "hot radio->ethernet"

    @property
    def cold(self) -> bool:
        """True for the cold (tear-down-first) cases."""
        return self in (SwitchCase.COLD_WIRED_TO_WIRELESS,
                        SwitchCase.COLD_WIRELESS_TO_WIRED)

    @property
    def starts_on_radio(self) -> bool:
        """True when the starting attachment is the radio."""
        return self in (SwitchCase.COLD_WIRELESS_TO_WIRED,
                        SwitchCase.HOT_WIRELESS_TO_WIRED)


@dataclass
class CaseResult:
    """Ten iterations of one switch case."""

    case: SwitchCase
    losses: List[int] = field(default_factory=list)
    switch_totals_ms: List[float] = field(default_factory=list)

    @property
    def loss_histogram(self) -> Dict[int, int]:
        """Losses as {packets lost: iterations}."""
        return histogram(self.losses)

    @property
    def max_loss(self) -> int:
        """Worst single-iteration loss."""
        return max(self.losses) if self.losses else 0

    @property
    def mean_loss(self) -> float:
        """Average packets lost per iteration."""
        return sum(self.losses) / len(self.losses) if self.losses else 0.0


@dataclass
class DeviceSwitchReport:
    """All four cases of Figure 6."""

    iterations: int
    cases: Dict[SwitchCase, CaseResult] = field(default_factory=dict)

    def format_report(self) -> str:
        """Render all four cases, paper-style."""
        lines = [f"Figure 6 — device switching overhead "
                 f"({self.iterations} iterations per case, UDP probe every "
                 f"{PROBE_INTERVAL / 1_000_000:g} ms)"]
        for case in SwitchCase:
            result = self.cases[case]
            mean_total = (sum(result.switch_totals_ms)
                          / len(result.switch_totals_ms))
            lines.append(f"\n{case.value}  (mean switch {mean_total:.0f} ms)")
            lines.append(format_histogram(result.loss_histogram))
        cold_max = max(self.cases[c].max_loss for c in SwitchCase if c.cold)
        hot_mean = sum(self.cases[c].mean_loss
                       for c in SwitchCase if not c.cold) / 2
        lines.append(
            f"\ncold switches lose up to {cold_max} packets "
            f"(paper: outage generally < 1.25 s, i.e. <= ~5 packets); "
            f"hot switches lose {hot_mean:.2f} packets on average "
            f"(paper: usually none)")
        return "\n".join(lines)


def _prepare(seed: int, config: Config, case: SwitchCase) -> Testbed:
    """Fresh testbed positioned at the case's starting attachment."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    if case.starts_on_radio:
        # Start attached via the radio; the Ethernet card is plugged into
        # net 36.8 but the interface is down (cold) or up+configured (hot).
        testbed.connect_radio(register=True)
        testbed.move_mh_cable(testbed.dept_segment)
        testbed.mh_eth.remove_address(addresses.mh_home)
        testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
        if case.cold:
            testbed.mh_eth.state = testbed.mh_eth.state.__class__.DOWN
        else:
            testbed.mh_eth.subnet = addresses.dept_net
            testbed.mh_eth.add_address(addresses.mh_dept_care_of,
                                       make_primary=True)
    else:
        # Start attached via Ethernet on net 36.8; radio down (cold) or
        # up with its static address (hot).
        testbed.visit_dept()
        if case.cold:
            testbed.mh_radio.subnet = addresses.radio_net
            testbed.mh_radio.add_address(addresses.mh_radio, make_primary=True)
        else:
            testbed.connect_radio(register=False)
    return testbed


def _switch(testbed: Testbed, case: SwitchCase,
            on_done) -> None:
    addresses = testbed.addresses
    switcher = DeviceSwitcher(testbed.mobile)
    if case.starts_on_radio:
        new_iface, old_iface = testbed.mh_eth, testbed.mh_radio
        care_of, net, gateway = (addresses.mh_dept_care_of, addresses.dept_net,
                                 addresses.router_dept)
    else:
        new_iface, old_iface = testbed.mh_radio, testbed.mh_eth
        care_of, net, gateway = (addresses.mh_radio, addresses.radio_net,
                                 addresses.router_radio)
    if case.cold:
        switcher.cold_switch(old_iface, new_iface, care_of, net, gateway,
                             on_done=on_done)
    else:
        switcher.hot_switch(new_iface, care_of, net, gateway, on_done=on_done)


def run_device_switch_trial(case_name: str, index: int, iterations: int,
                            seed: int,
                            config: Config = DEFAULT_CONFIG) -> dict:
    """One (case, iteration) cell of Figure 6 as a pure trial unit."""
    case = SwitchCase[case_name]
    testbed = _prepare(seed, config, case)
    sim = testbed.sim
    addresses = testbed.addresses
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=PROBE_INTERVAL)
    sim.run_for(ms(800))  # initial registration settles
    stream.start()
    sim.run_for(s(2))

    timelines: List[SwitchTimeline] = []
    # Spread the switch start across one probe interval.
    phase = (index * PROBE_INTERVAL) // max(iterations, 1)
    sim.call_later(phase, lambda: _switch(testbed, case, timelines.append))
    sim.run_for(s(6))
    stream.stop()
    sim.run_for(s(3))  # drain radio-delayed stragglers

    if not timelines or not timelines[0].success:
        raise RuntimeError(f"{case.value} iteration {index} failed")
    return {"loss": stream.lost_count(),
            "switch_total_ms": timelines[0].total / 1_000_000}


def build_device_switch_trials(iterations: int, seed: int,
                               config: Config) -> List[Trial]:
    """4 cases x *iterations* trials, seeds exactly as the serial loop."""
    trials: List[Trial] = []
    for case_index, case in enumerate(SwitchCase):
        for index in range(iterations):
            trials.append(Trial(
                "repro.experiments.exp_device_switch:run_device_switch_trial",
                dict(case_name=case.name, index=index, iterations=iterations,
                     seed=seed + index * 131 + case_index * 9973,
                     config=config)))
    return trials


def merge_device_switch_trials(results: List[dict],
                               iterations: int) -> DeviceSwitchReport:
    """Regroup the ordered (case-major) trial results into the report."""
    report = DeviceSwitchReport(iterations=iterations)
    cursor = iter(results)
    for case in SwitchCase:
        case_result = CaseResult(case=case)
        for _ in range(iterations):
            result = next(cursor)
            case_result.losses.append(result["loss"])
            case_result.switch_totals_ms.append(result["switch_total_ms"])
        report.cases[case] = case_result
    return report


def run_device_switch_experiment(iterations: int = PAPER_ITERATIONS,
                                 seed: int = 23,
                                 config: Config = DEFAULT_CONFIG,
                                 jobs: int = 1,
                                 runner: Optional[ParallelRunner] = None
                                 ) -> DeviceSwitchReport:
    """Reproduce Figure 6: 4 cases x *iterations*, loss histograms.

    Every (case, iteration) cell is an independent trial, so ``jobs=N``
    shards all ``4 * iterations`` of them across workers.
    """
    trials = build_device_switch_trials(iterations, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_device_switch_trials(results, iterations)


if __name__ == "__main__":  # pragma: no cover
    print(run_device_switch_experiment().format_report())
