"""Section 5.1's foreign-agent ablation: does an FA reduce packet loss?

The paper's honest accounting of its own design choice:

"Foreign agents may somewhat reduce packet loss.  When a mobile host
leaves a network, it must inform its home agent of its new care-of
address.  However, any packets already sent by the home agent before it
receives the new registration will arrive at the old network and will be
lost.  If, however, a foreign agent in the old network receives the new
registration before the packets arrive, it can forward the packets to the
mobile host's new care-of address."

The scenario that makes the difference visible is a cold switch *away
from the radio network*: the radio path holds ~100 ms of in-flight
packets, so packets tunneled before the home agent learns the new
location keep arriving at the old network for a while.

* **Without FA** (MosquitoNet): those packets hit the mobile host's dead
  radio interface and are lost.
* **With FA** on the radio network: the mobile host was attached through
  the FA; when it registers its new care-of address it also notifies the
  old FA (the "new registration" reaching the old network), which
  re-tunnels late arrivals to the new location.

Both configurations perform the same movement with the same probe stream;
the report compares loss distributions.  The paper predicts a modest
reduction — and concludes the benefit is not worth requiring FAs
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.handoff import DeviceSwitcher, SwitchTimeline
from repro.experiments.harness import format_histogram, histogram
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

#: Probe spacing.  Chosen so the radio channel is not saturated even in
#: the FA configuration, where every probe crosses the air twice on the
#: way in (router -> FA -> mobile host) and once on the way out.
PROBE_INTERVAL = ms(150)


@dataclass
class FAAblationReport:
    """Loss comparison: collocated care-of vs foreign agent."""

    iterations: int
    losses_without_fa: List[int] = field(default_factory=list)
    losses_with_fa: List[int] = field(default_factory=list)
    forwarded_by_fa: List[int] = field(default_factory=list)

    @property
    def mean_without(self) -> float:
        """Mean loss without a foreign agent."""
        return sum(self.losses_without_fa) / max(len(self.losses_without_fa), 1)

    @property
    def mean_with(self) -> float:
        """Mean loss with the FA forwarding after departure."""
        return sum(self.losses_with_fa) / max(len(self.losses_with_fa), 1)

    def format_report(self) -> str:
        """Render both configurations' histograms."""
        lines = [
            "Foreign-agent ablation (Section 5.1): cold radio->ethernet move,"
            f" UDP probe every {PROBE_INTERVAL / 1_000_000:g} ms,"
            f" {self.iterations} iterations per configuration",
            "",
            f"without FA (MosquitoNet)  mean loss {self.mean_without:.1f}:",
            format_histogram(histogram(self.losses_without_fa)),
            f"with FA smooth handoff   mean loss {self.mean_with:.1f}:",
            format_histogram(histogram(self.losses_with_fa)),
            "",
            f"packets the old FA saved per run: "
            f"{sum(self.forwarded_by_fa) / max(len(self.forwarded_by_fa), 1):.1f} "
            "(paper: FAs 'may somewhat reduce packet loss' — a modest, real, "
            "but not decisive benefit)",
        ]
        return "\n".join(lines)


def _run_once_without_fa(seed: int, config: Config) -> int:
    """MosquitoNet: collocated care-of on the radio, cold switch to eth."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    testbed.connect_radio(register=True)
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(addresses.mh_home)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.state = testbed.mh_eth.state.__class__.DOWN

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=PROBE_INTERVAL)
    sim.run_for(ms(1200))
    stream.start()
    sim.run_for(s(2))

    done: List[SwitchTimeline] = []
    DeviceSwitcher(testbed.mobile).cold_switch(
        testbed.mh_radio, testbed.mh_eth, addresses.mh_dept_care_of,
        addresses.dept_net, addresses.router_dept, on_done=done.append)
    sim.run_for(s(5))
    stream.stop()
    sim.run_for(s(3))
    if not done or not done[0].success:
        raise RuntimeError("cold switch failed (no-FA configuration)")
    return stream.lost_count()


def _run_once_with_fa(seed: int, config: Config) -> tuple:
    """Baseline: attached via the radio FA, which forwards after departure."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False, with_radio_foreign_agent=True)
    addresses = testbed.addresses
    fa = testbed.radio_foreign_agent
    assert fa is not None

    # Attach through the FA on the radio network.
    testbed.connect_radio(register=False)
    testbed.mobile.attach_via_foreign_agent(
        testbed.mh_radio, fa.care_of_address, addresses.radio_net)
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.state = testbed.mh_eth.state.__class__.DOWN

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=PROBE_INTERVAL)
    sim.run_for(ms(2500))  # FA-relayed registration takes a radio RTT
    stream.start()
    sim.run_for(s(2))

    done: List[SwitchTimeline] = []

    def switch() -> None:
        DeviceSwitcher(testbed.mobile).cold_switch(
            testbed.mh_radio, testbed.mh_eth, addresses.mh_dept_care_of,
            addresses.dept_net, addresses.router_dept, on_done=done.append)
        # "A foreign agent in the old network receives the new
        # registration": the MH's binding update reaches the old FA as
        # soon as the new registration is sent.  We notify at switch start
        # plus the new path's setup time via a trace-driven hook below.

    sim.call_later(0, switch)

    # Notify the old FA when the new registration request goes out.
    def watch_registration() -> None:
        sent = sim.trace.select("registration", "request_sent")
        fresh = [record for record in sent
                 if record.get("target") == str(testbed.home_agent.address)]
        if fresh:
            fa.notify_departure(addresses.mh_home, addresses.mh_dept_care_of)
        else:
            sim.call_later(ms(50), watch_registration)

    sim.call_later(ms(50), watch_registration)

    sim.run_for(s(5))
    stream.stop()
    sim.run_for(s(3))
    if not done or not done[0].success:
        raise RuntimeError("cold switch failed (FA configuration)")
    return stream.lost_count(), fa.packets_forwarded_after_departure


def run_fa_trial(with_fa: bool, seed: int,
                 config: Config = DEFAULT_CONFIG) -> dict:
    """One cold radio->ethernet move in either configuration."""
    if with_fa:
        lost, forwarded = _run_once_with_fa(seed, config)
        return {"loss": lost, "forwarded": forwarded}
    return {"loss": _run_once_without_fa(seed, config), "forwarded": None}


def build_fa_ablation_trials(iterations: int, seed: int,
                             config: Config) -> List[Trial]:
    """Interleaved (without, with) pairs, seeds as the serial loop."""
    func = "repro.experiments.exp_fa_ablation:run_fa_trial"
    trials: List[Trial] = []
    for index in range(iterations):
        trials.append(Trial(func, dict(with_fa=False, seed=seed + index,
                                       config=config)))
        trials.append(Trial(func, dict(with_fa=True,
                                       seed=seed + 1000 + index,
                                       config=config)))
    return trials


def merge_fa_ablation_trials(results: List[dict],
                             iterations: int) -> FAAblationReport:
    """Split the interleaved results back into the two configurations."""
    report = FAAblationReport(iterations=iterations)
    for without, with_fa in zip(results[0::2], results[1::2]):
        report.losses_without_fa.append(without["loss"])
        report.losses_with_fa.append(with_fa["loss"])
        report.forwarded_by_fa.append(with_fa["forwarded"])
    return report


def run_fa_ablation(iterations: int = 10, seed: int = 47,
                    config: Config = DEFAULT_CONFIG,
                    jobs: int = 1,
                    runner: Optional[ParallelRunner] = None
                    ) -> FAAblationReport:
    """Run both configurations *iterations* times and compare loss.

    Every run is an independent trial (2 x *iterations* of them), so
    ``jobs=N`` shards the whole comparison across workers.
    """
    trials = build_fa_ablation_trials(iterations, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_fa_ablation_trials(results, iterations)


if __name__ == "__main__":  # pragma: no cover
    print(run_fa_ablation().format_report())
