"""The Section 3.2 routing-options ablation (Figure 3's triangle route).

The paper lists four ways the mobile host can send, evaluated on three
criteria: path/overhead improvement, correspondent-side requirements, and
whether "routers or firewalls are likely to object".  This ablation
measures all four on the testbed:

* round-trip time of a UDP echo to the correspondent under each mode
  (tunneling pays the extra home-agent hop; the direct modes don't);
* per-packet encapsulation overhead in bytes on the wire;
* whether the mode keeps working when the visited network's router
  forbids transit traffic — and the Mobile Policy Table's probe-and-
  fallback behaviour when it doesn't.

The transit-filter scenario uses the remote network (36.40), which belongs
to a different administrative domain, with ingress filtering enabled on
its router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.policy import RoutingMode
from repro.experiments.harness import Stats, format_table, summarize_ms
from repro.net.packet import IP_HEADER_BYTES
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

#: Paper: "encapsulation adds 20 bytes or more to the packet length".
PAPER_ENCAP_OVERHEAD_BYTES = IP_HEADER_BYTES


@dataclass
class ModeResult:
    """Measurements for one routing mode."""

    mode: RoutingMode
    #: RTT to a correspondent on the *visited* network's LAN: this is where
    #: "the extra path through the home agent adds latency" shows up —
    #: tunneled packets detour across the backbone to the home agent and
    #: back, the direct modes stay on the LAN.
    rtt_nearby: Stats
    #: RTT to the department correspondent across the backbone.
    rtt_distant: Stats
    encap_overhead_bytes: int
    survives_transit_filter: bool
    preserves_mobility: bool


@dataclass
class RoutingOptionsReport:
    """All four modes plus the dynamic-fallback demonstration."""

    probes_per_mode: int
    results: Dict[RoutingMode, ModeResult] = field(default_factory=dict)
    #: The probe-and-fallback run: losses before/after the policy update.
    fallback_probe_failed: bool = False
    fallback_recovered: bool = False

    def format_report(self) -> str:
        """Render the four-mode comparison table."""
        rows = []
        for mode in RoutingMode:
            result = self.results[mode]
            rows.append((
                mode.value,
                result.rtt_nearby.format_ms(),
                result.rtt_distant.format_ms(),
                result.encap_overhead_bytes,
                "yes" if result.survives_transit_filter else "NO",
                "yes" if result.preserves_mobility else "NO",
            ))
        table = format_table(
            ("mode", "RTT nearby CH ms", "RTT distant CH ms", "encap bytes",
             "passes transit filter", "preserves mobility"), rows)
        lines = [
            "Routing options ablation (Section 3.2 / Figure 3)",
            table,
            "",
            "Dynamic fallback (Mobile Policy Table): triangle-route probe "
            f"{'failed as expected' if self.fallback_probe_failed else 'UNEXPECTEDLY PASSED'} "
            "behind the filtering router; after caching the fallback the "
            f"tunnel {'restored connectivity' if self.fallback_recovered else 'DID NOT recover'}.",
        ]
        return "\n".join(lines)


def run_mode_probe_trial(mode_name: str, probes: int, seed: int,
                         transit_filter: bool, nearby: bool,
                         config: Config = DEFAULT_CONFIG) -> dict:
    """One (mode, correspondent, filter) measurement as a pure trial.

    Returns ``{"rtts_ns": [...]}``; the list is empty when every probe
    was lost (mode unusable in this setup).
    """
    stats = _measure_mode(RoutingMode[mode_name], probes, seed, config,
                          transit_filter=transit_filter, nearby=nearby)
    return {"rtts_ns": stats}


def run_fallback_trial(seed: int, config: Config = DEFAULT_CONFIG) -> dict:
    """The probe-and-fallback demonstration as a pure trial."""
    probe_failed, recovered = _fallback_demo(seed, config)
    return {"probe_failed": probe_failed, "recovered": recovered}


def _measure_mode(mode: RoutingMode, probes: int, seed: int,
                  config: Config, transit_filter: bool,
                  nearby: bool) -> List[int]:
    """Echo RTTs (raw ns) from the visiting MH to a correspondent.

    Returns an empty list if every probe was lost (mode unusable in this
    setup).  The MH visits the *remote* network (36.40); with ``nearby``
    the probes target the correspondent on that same LAN, otherwise the
    department correspondent across the backbone.  With *transit_filter*
    the remote router enforces ingress filtering.
    """
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_dhcp=False)
    addresses = testbed.addresses
    assert testbed.remote_router is not None
    assert testbed.remote_correspondent is not None
    if transit_filter:
        testbed.remote_router.enable_transit_filter()
    testbed.visit_remote()
    sim.run_for(ms(1500))

    # The correspondent echoes; the MH probes it under the given policy.
    correspondent = (testbed.remote_correspondent if nearby
                     else testbed.correspondent)
    target = addresses.ch_remote if nearby else addresses.ch_dept
    UdpEchoResponder(correspondent)
    testbed.mobile.policy.set_policy(target, mode)
    if mode is RoutingMode.ENCAP_DIRECT:
        # The encapsulated-direct variant requires the correspondent to
        # have "transparent IP-in-IP decapsulation capability such as is
        # found in recent Linux development kernels".
        from repro.core.tunnel import IPIPModule

        IPIPModule(correspondent)
    stream = UdpEchoStream(testbed.mobile, target, interval=ms(120))
    stream.start()
    sim.run_for(ms(120) * probes)
    stream.stop()
    sim.run_for(s(2))
    return list(stream.rtts())


def _encap_overhead(mode: RoutingMode) -> int:
    return IP_HEADER_BYTES if mode.encapsulates else 0


def _fallback_demo(seed: int, config: Config) -> tuple:
    """Probe-and-fallback: ping fails under TRIANGLE, tunnel recovers."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_dhcp=False)
    addresses = testbed.addresses
    assert testbed.remote_router is not None
    testbed.remote_router.enable_transit_filter()
    testbed.visit_remote()
    testbed.mobile.policy.default_mode = RoutingMode.TRIANGLE
    sim.run_for(ms(1500))

    probe_outcomes: List[bool] = []
    testbed.mobile.probe_correspondent(
        addresses.ch_dept,
        on_result=lambda dst, ok: probe_outcomes.append(ok))
    sim.run_for(s(4))
    probe_failed = bool(probe_outcomes) and not probe_outcomes[0]
    # The failed probe cached a TUNNEL fallback; traffic now flows.
    assert testbed.mobile.policy.lookup(addresses.ch_dept) is RoutingMode.TUNNEL

    UdpEchoResponder(testbed.correspondent)
    stream = UdpEchoStream(testbed.mobile, addresses.ch_dept, interval=ms(100))
    stream.start()
    sim.run_for(s(2))
    stream.stop()
    sim.run_for(s(2))
    recovered = stream.received >= stream.sent - 1 and stream.sent > 0
    return probe_failed, recovered


def build_routing_options_trials(probes: int, seed: int,
                                 config: Config) -> List[Trial]:
    """Three measurements per mode plus the fallback demo, mode-major."""
    measure = "repro.experiments.exp_routing_options:run_mode_probe_trial"
    trials: List[Trial] = []
    for index, mode in enumerate(RoutingMode):
        trials.append(Trial(measure, dict(
            mode_name=mode.name, probes=probes, seed=seed + index,
            transit_filter=False, nearby=True, config=config)))
        trials.append(Trial(measure, dict(
            mode_name=mode.name, probes=probes, seed=seed + 50 + index,
            transit_filter=False, nearby=False, config=config)))
        trials.append(Trial(measure, dict(
            mode_name=mode.name, probes=probes, seed=seed + 100 + index,
            transit_filter=True, nearby=False, config=config)))
    trials.append(Trial(
        "repro.experiments.exp_routing_options:run_fallback_trial",
        dict(seed=seed + 500, config=config)))
    return trials


def merge_routing_options_trials(results: List[dict],
                                 probes: int) -> RoutingOptionsReport:
    """Reassemble the mode-major (nearby, distant, filtered) triples."""
    report = RoutingOptionsReport(probes_per_mode=probes)
    cursor = iter(results)
    for mode in RoutingMode:
        nearby_rtts = next(cursor)["rtts_ns"]
        distant_rtts = next(cursor)["rtts_ns"]
        filtered_rtts = next(cursor)["rtts_ns"]
        if not nearby_rtts or not distant_rtts:
            raise RuntimeError(f"mode {mode.value} failed on the open network")
        report.results[mode] = ModeResult(
            mode=mode,
            rtt_nearby=summarize_ms(nearby_rtts),
            rtt_distant=summarize_ms(distant_rtts),
            encap_overhead_bytes=_encap_overhead(mode),
            survives_transit_filter=bool(filtered_rtts),
            preserves_mobility=mode.preserves_mobility,
        )
    fallback = next(cursor)
    report.fallback_probe_failed = fallback["probe_failed"]
    report.fallback_recovered = fallback["recovered"]
    return report


def run_routing_options_experiment(probes: int = 20, seed: int = 31,
                                   config: Config = DEFAULT_CONFIG,
                                   jobs: int = 1,
                                   runner: Optional[ParallelRunner] = None
                                   ) -> RoutingOptionsReport:
    """Measure all four routing modes plus the dynamic fallback.

    The 13 measurements (4 modes x 3 scenarios + fallback demo) are
    independent trials sharded across workers by ``jobs=N``.
    """
    trials = build_routing_options_trials(probes, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_routing_options_trials(results, probes)


if __name__ == "__main__":  # pragma: no cover
    print(run_routing_options_experiment().format_report())
