"""Fleet scale (x7): 10^3-10^6 hosts on a consistent-hash HA plane.

The paper closes with "the home agent should be able to deal with a
large number of mobile hosts"; x2 quantified that for one agent and x4
sharded real object-graph fleets to 10^3.  This experiment pushes three
more orders of magnitude by swapping per-host simulation for
:class:`~repro.workloads.aggregate.AggregateHostModel` — one object per
*shard* of hosts, generating the fleet's registration arrival, binding
churn and tunnel-volume processes statistically — served by a
:class:`~repro.core.binding_shard.HashRing` of home-agent replicas
(the plane a real deployment would run).

Per fleet size the report gives the offered registration rate
(registrations/second across the plane) and the **p99 binding latency**,
which the M/D/1 queueing model makes sensitive to per-replica load: ring
imbalance, fleet growth and failed-replica takeover all surface in the
tail.  A final row re-runs the 10^5 fleet with one replica crashed, so
the takeover path's cost is a number, not a claim.

Sharding: fleets larger than :data:`AGGREGATE_SHARD_HOSTS` split into
balanced aggregate shards, one :class:`~repro.parallel.Trial` each.
Shard seeds are ``spawn_seed(base, row_index, shard_index)`` and every
per-host draw inside a model comes from a stream keyed by the model's
base seed and the host's index, so ``--jobs N`` reports stay
byte-identical to serial at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.config import Config, DEFAULT_CONFIG
from repro.core.binding_shard import HashRing
from repro.experiments.harness import (
    LatencyHistogram,
    Stats,
    format_table,
    merge_stats,
)
from repro.parallel import (
    ParallelRunner,
    Trial,
    balanced_shards,
    run_trials,
    spawn_seed,
)
from repro.sim.engine import Simulator
from repro.sim.units import s
from repro.workloads.aggregate import AggregateHostModel

#: The sweep: three orders of magnitude past the x4 per-host ceiling.
DEFAULT_FLEET_SIZES = (1_000, 10_000, 100_000, 1_000_000)
#: Hosts per aggregate shard: the 10^6 fleet becomes 8 trials, smaller
#: fleets stay single-shard.
AGGREGATE_SHARD_HOSTS = 125_000
#: Fleet size for the degraded (one replica crashed) row; ``None``
#: disables the row.
DEFAULT_FAILOVER_FLEET = 100_000
#: Hosts one home-agent replica is provisioned for; sets replica count.
HOSTS_PER_AGENT = 50_000
#: Smallest plane: even a 10^3-host fleet runs the sharded architecture.
MIN_AGENTS = 4
#: Ring geometry (64 virtual nodes per replica bounds imbalance ~±20%).
RING_VNODES = 64

HORIZON = s(30)


def agent_count_for(fleet_size: int) -> int:
    """Replicas provisioned for a fleet: ~1 per 50k hosts, at least 4."""
    return max(MIN_AGENTS, -(-fleet_size // HOSTS_PER_AGENT))


def agent_names(count: int) -> List[str]:
    """The replica naming scheme shared by trials and reports."""
    return [f"ha{index}" for index in range(count)]


@dataclass
class FleetScalePoint:
    """One fleet size, merged across its aggregate shards."""

    fleet_size: int
    agents: int
    failed: int
    shards: int
    registrations: int
    handoffs: int
    registrations_per_sec: float
    latency: Stats
    p99_ms: float
    tunnel_mbytes: float
    saturated_agents: int


@dataclass
class FleetScaleReport:
    points: List[FleetScalePoint] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the scaling table (plus the takeover row when present)."""
        rows = []
        for point in self.points:
            label = (f"{point.fleet_size:,}" if not point.failed
                     else f"{point.fleet_size:,} ({point.failed} HA down)")
            rows.append((label, point.agents, point.shards,
                         f"{point.registrations:,}",
                         f"{point.registrations_per_sec:,.1f}",
                         point.latency.format_ms(),
                         f"{point.p99_ms:.2f}",
                         f"{point.tunnel_mbytes:,.1f}",
                         "yes" if point.saturated_agents else "no"))
        table = format_table(
            ("fleet hosts", "HAs", "shards", "registrations", "regs/sec",
             "binding latency ms: mean (std)", "p99 ms", "tunnel MB",
             "saturated"), rows)
        return ("Fleet scale: aggregate hosts on a consistent-hash "
                "home-agent plane (30 s horizon)\n" + table)


def run_fleet_scale_trial(fleet_size: int, n_hosts: int, host_offset: int,
                          agents: int, failed: Tuple[str, ...], seed: int,
                          config: Config = DEFAULT_CONFIG) -> dict:
    """One aggregate shard as a pure trial: (params, seed) -> partials."""
    sim = Simulator(seed=seed)
    ring = HashRing(agent_names(agents), vnodes=RING_VNODES)
    model = AggregateHostModel(sim, "fleet", n_hosts,
                               horizon=HORIZON,
                               fleet_hosts=fleet_size,
                               host_offset=host_offset,
                               ring=ring,
                               failed_agents=frozenset(failed),
                               config=config)
    model.run()
    result = model.partials()
    result["fleet_size"] = fleet_size
    result["agents"] = agents
    result["failed"] = len(failed)
    return result


def _row_trials(row_index: int, fleet_size: int, failed: Tuple[str, ...],
                seed: int, config: Config, shard_hosts: int) -> List[Trial]:
    """The balanced shard trials of one report row."""
    trials: List[Trial] = []
    agents = agent_count_for(fleet_size)
    offset = 0
    for shard_index, shard_size in enumerate(
            balanced_shards(fleet_size, shard_hosts)):
        trials.append(Trial(
            "repro.experiments.exp_fleet_scale:run_fleet_scale_trial",
            dict(fleet_size=fleet_size, n_hosts=shard_size,
                 host_offset=offset, agents=agents, failed=failed,
                 seed=spawn_seed(seed, row_index, shard_index),
                 config=config)))
        offset += shard_size
    return trials


def build_fleet_scale_trials(fleet_sizes: Sequence[int], seed: int,
                             config: Config,
                             shard_hosts: int = AGGREGATE_SHARD_HOSTS,
                             failover_fleet: Optional[int] =
                             DEFAULT_FAILOVER_FLEET) -> List[Trial]:
    """All rows' trials: the sweep plus the optional one-HA-down row.

    Seeds are ``spawn_seed(base, row, shard)`` — pure functions of the
    trial's logical position, never of worker count.
    """
    trials: List[Trial] = []
    for row_index, fleet_size in enumerate(fleet_sizes):
        trials.extend(_row_trials(row_index, fleet_size, (), seed, config,
                                  shard_hosts))
    if failover_fleet:
        trials.extend(_row_trials(len(fleet_sizes), failover_fleet,
                                  ("ha0",), seed, config, shard_hosts))
    return trials


def merge_fleet_scale_trials(results: List[dict], fleet_sizes: Sequence[int],
                             shard_hosts: int = AGGREGATE_SHARD_HOSTS,
                             failover_fleet: Optional[int] =
                             DEFAULT_FAILOVER_FLEET) -> FleetScaleReport:
    """Fold ordered shard partials into per-fleet rows, losslessly.

    ``Stats`` merge via Welford partials, histograms by bucket addition,
    everything else by summation — the same result any shard count (or
    worker count) produces.
    """
    report = FleetScaleReport()
    cursor = iter(results)
    rows: List[Tuple[int, int]] = [(size, 0) for size in fleet_sizes]
    if failover_fleet:
        rows.append((failover_fleet, 1))
    horizon_s = HORIZON / 1e9
    for fleet_size, failed in rows:
        shard_sizes = balanced_shards(fleet_size, shard_hosts)
        shard_results = [next(cursor) for _ in shard_sizes]
        registrations = sum(r["registrations"] for r in shard_results)
        histogram = LatencyHistogram()
        for result in shard_results:
            histogram.merge(LatencyHistogram.from_counts(
                result["latency_hist"]))
        report.points.append(FleetScalePoint(
            fleet_size=fleet_size,
            agents=shard_results[0]["agents"],
            failed=failed,
            shards=len(shard_sizes),
            registrations=registrations,
            handoffs=sum(r["handoffs"] for r in shard_results),
            registrations_per_sec=registrations / horizon_s,
            latency=merge_stats([Stats(**r["latency"])
                                 for r in shard_results]),
            p99_ms=histogram.quantile(0.99),
            tunnel_mbytes=sum(r["tunnel_bytes"]
                              for r in shard_results) / 1e6,
            saturated_agents=max(r["saturated_agents"]
                                 for r in shard_results),
        ))
    return report


def run_fleet_scale_experiment(fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
                               seed: int = 29,
                               config: Config = DEFAULT_CONFIG,
                               shard_hosts: int = AGGREGATE_SHARD_HOSTS,
                               failover_fleet: Optional[int] =
                               DEFAULT_FAILOVER_FLEET,
                               jobs: int = 1,
                               runner: Optional[ParallelRunner] = None
                               ) -> FleetScaleReport:
    """The full sweep; ``jobs=N`` shards the big fleets across workers."""
    trials = build_fleet_scale_trials(fleet_sizes, seed, config,
                                      shard_hosts, failover_fleet)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_fleet_scale_trials(results, fleet_sizes, shard_hosts,
                                    failover_fleet)


if __name__ == "__main__":  # pragma: no cover
    print(run_fleet_scale_experiment().format_report())
