"""Experiment harnesses: one module per measured figure/experiment.

* :mod:`repro.experiments.exp_registration` — Figure 7 (registration
  time-line, per-stage breakdown).
* :mod:`repro.experiments.exp_same_subnet` — the Section 4 same-subnet
  address switch (20 iterations, UDP every 10 ms).
* :mod:`repro.experiments.exp_device_switch` — Figure 6 (cold/hot device
  switching, packet-loss histograms, UDP every 250 ms).
* :mod:`repro.experiments.exp_routing_options` — the Section 3.2 routing
  options ablation (triangle route et al., plus the transit-filter
  fallback).
* :mod:`repro.experiments.exp_fa_ablation` — Section 5.1's foreign-agent
  packet-loss comparison.

Extension experiments (features the paper names but defers):

* :mod:`repro.experiments.exp_smart_correspondent` — reverse-path routing
  via smart correspondent hosts (Section 3.2 / 5.1).
* :mod:`repro.experiments.exp_ha_scalability` — the "large number of
  mobile hosts simultaneously" claim, quantified (Section 4).
* :mod:`repro.experiments.exp_autoswitch` — probe-cadence ablation for the
  automatic network selector (Section 6).
* :mod:`repro.experiments.exp_chaos` — session survival under injected
  faults (``repro.faults``): loss phases, flaps, home-agent restart.
* :mod:`repro.experiments.exp_tcp_cc` — TCP congestion-control sweep
  (Tahoe vs Reno vs CUBIC, SACK) over bursty loss and a mid-stream
  Ethernet-to-radio handoff.
* :mod:`repro.experiments.exp_fleet_scale` — 10^3-10^6-host fleets on a
  consistent-hash home-agent plane via aggregate host models.
* :mod:`repro.experiments.exp_plane_chaos` — membership churn,
  partitions and crashes thrown at the binding plane under live
  registration load, gated by the plane invariant auditor.

``python -m repro.experiments`` runs everything and prints paper-style
reports.
"""

from repro.experiments.exp_device_switch import (
    DeviceSwitchReport,
    run_device_switch_experiment,
)
from repro.experiments.exp_fa_ablation import FAAblationReport, run_fa_ablation
from repro.experiments.exp_registration import (
    RegistrationReport,
    run_registration_experiment,
)
from repro.experiments.exp_routing_options import (
    RoutingOptionsReport,
    run_routing_options_experiment,
)
from repro.experiments.exp_same_subnet import (
    SameSubnetReport,
    run_same_subnet_experiment,
)
from repro.experiments.exp_autoswitch import (
    AutoswitchReport,
    run_autoswitch_experiment,
)
from repro.experiments.exp_chaos import (
    ChaosReport,
    run_chaos_experiment,
)
from repro.experiments.exp_fleet_scale import (
    FleetScaleReport,
    run_fleet_scale_experiment,
)
from repro.experiments.exp_plane_chaos import (
    PlaneChaosReport,
    run_plane_chaos_experiment,
)
from repro.experiments.exp_ha_scalability import (
    HAFleetSweepReport,
    HAScalabilityReport,
    run_ha_fleet_sweep,
    run_ha_scalability_experiment,
)
from repro.experiments.exp_smart_correspondent import (
    SmartCorrespondentReport,
    run_smart_correspondent_experiment,
)
from repro.experiments.exp_tcp_cc import (
    TcpCcReport,
    run_tcp_cc_experiment,
)

__all__ = [
    "run_registration_experiment",
    "RegistrationReport",
    "run_same_subnet_experiment",
    "SameSubnetReport",
    "run_device_switch_experiment",
    "DeviceSwitchReport",
    "run_routing_options_experiment",
    "RoutingOptionsReport",
    "run_fa_ablation",
    "FAAblationReport",
    "run_smart_correspondent_experiment",
    "SmartCorrespondentReport",
    "run_ha_scalability_experiment",
    "HAScalabilityReport",
    "run_ha_fleet_sweep",
    "HAFleetSweepReport",
    "run_autoswitch_experiment",
    "AutoswitchReport",
    "run_chaos_experiment",
    "ChaosReport",
    "run_tcp_cc_experiment",
    "TcpCcReport",
    "run_fleet_scale_experiment",
    "FleetScaleReport",
    "run_plane_chaos_experiment",
    "PlaneChaosReport",
]
