"""Shared experiment machinery: statistics, tables, serialization."""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class Stats:
    """Mean/std summary of one measured quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def format_ms(self, precision: int = 2) -> str:
        """Render as the paper does: ``mean (std)`` in milliseconds."""
        return f"{self.mean:.{precision}f} ({self.std:.{precision}f})"


class Welford:
    """Single-pass mean/variance accumulator with partial-merge support.

    Welford's online update gives mean and sum-of-squared-deviations in
    one pass; :meth:`merge` is Chan et al.'s pairwise combination, which
    lets each shard of a parallel experiment summarize its own samples
    and the merge step fold the partials into one :class:`Stats` without
    ever shipping the raw values between processes.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_many(self, values: Iterable[float]) -> "Welford":
        """Fold a sequence of samples in; returns self for chaining."""
        for value in values:
            self.add(value)
        return self

    def merge(self, other: "Welford") -> "Welford":
        """Fold another accumulator's partial state in (Chan et al.)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def merge_stats(self, stats: "Stats") -> "Welford":
        """Fold a finalized :class:`Stats` in (recovers its m2)."""
        partial = Welford()
        partial.count = stats.count
        partial.mean = stats.mean
        partial.m2 = stats.std * stats.std * max(stats.count - 1, 0)
        partial.minimum = stats.minimum if stats.count else math.inf
        partial.maximum = stats.maximum if stats.count else -math.inf
        return self.merge(partial)

    def finalize(self) -> Stats:
        """The accumulated samples as a :class:`Stats` (sample std)."""
        if self.count == 0:
            return Stats(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
        variance = self.m2 / (self.count - 1) if self.count > 1 else 0.0
        return Stats(count=self.count, mean=self.mean,
                     std=math.sqrt(max(variance, 0.0)),
                     minimum=self.minimum, maximum=self.maximum)


def summarize(values: Sequence[float]) -> Stats:
    """Mean and *sample* standard deviation of *values* (single pass)."""
    return Welford().add_many(values).finalize()


def merge_stats(parts: Sequence[Stats]) -> Stats:
    """Combine per-shard :class:`Stats` into one, exactly and in order.

    A single part is returned unchanged (no float round-trip), so a
    one-shard experiment reports identically to the unsharded original.
    """
    parts = [part for part in parts if part.count]
    if not parts:
        return Stats(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    if len(parts) == 1:
        return parts[0]
    accumulator = Welford()
    for part in parts:
        accumulator.merge_stats(part)
    return accumulator.finalize()


def summarize_ms(values_ns: Sequence[int]) -> Stats:
    """Summarize nanosecond samples in milliseconds."""
    return summarize([value / 1_000_000 for value in values_ns])


def histogram(values: Iterable[int]) -> Dict[int, int]:
    """Count occurrences of each integer value (Figure 6's bar heights)."""
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))


def format_histogram(counts: Dict[int, int], unit: str = "packets lost") -> str:
    """ASCII rendering of a loss histogram, one bar per value."""
    if not counts:
        return "(no data)"
    lines = []
    for value in sorted(counts):
        bar = "#" * counts[value]
        lines.append(f"  {value:>3} {unit}: {bar} ({counts[value]})")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Left-aligned plain-text table."""
    cells = [[str(header) for header in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    out: List[str] = []
    for index, row in enumerate(cells):
        line = "  ".join(value.ljust(width) for value, width in zip(row, widths))
        out.append(line.rstrip())
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def as_plain_data(value: Any) -> Any:
    """Convert any experiment report to JSON-ready plain data.

    Dataclasses become dicts, enums become their values, dict keys are
    stringified when they are not already plain.  Lets downstream tooling
    (plots, CSV, regression tracking) consume every report uniformly:

    >>> import json
    >>> json.dumps(as_plain_data(report))  # doctest: +SKIP
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: as_plain_data(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            (key if isinstance(key, (str, int, float, bool)) or key is None
             else (key.value if isinstance(key, enum.Enum) else str(key))):
            as_plain_data(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [as_plain_data(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spread_phases(iterations: int, interval_ns: int, base_ns: int) -> List[int]:
    """Evenly spread switch times across one probe interval.

    The same-subnet experiment's loss count depends on where the switch
    lands relative to the 10 ms probe ticks; spreading start phases across
    the interval samples that uniformly (and deterministically).
    """
    return [base_ns + (index * interval_ns) // iterations
            for index in range(iterations)]
