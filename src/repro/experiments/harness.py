"""Shared experiment machinery: statistics, tables, serialization.

The statistics core (Welford accumulators, mergeable :class:`Stats`,
quantile histograms) lives in :mod:`repro.stats` so lower layers — the
aggregate workload models, the parallel runner — can use it without
importing the experiment package; this module re-exports it unchanged
for the experiment harnesses and existing callers.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Iterable, List, Sequence

from repro.stats import (  # noqa: F401  (re-exported public API)
    LatencyHistogram,
    Stats,
    Welford,
    merge_histograms,
    merge_stats,
    summarize,
    summarize_ms,
)


def histogram(values: Iterable[int]) -> Dict[int, int]:
    """Count occurrences of each integer value (Figure 6's bar heights)."""
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))


def format_histogram(counts: Dict[int, int], unit: str = "packets lost") -> str:
    """ASCII rendering of a loss histogram, one bar per value."""
    if not counts:
        return "(no data)"
    lines = []
    for value in sorted(counts):
        bar = "#" * counts[value]
        lines.append(f"  {value:>3} {unit}: {bar} ({counts[value]})")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Left-aligned plain-text table."""
    cells = [[str(header) for header in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    out: List[str] = []
    for index, row in enumerate(cells):
        line = "  ".join(value.ljust(width) for value, width in zip(row, widths))
        out.append(line.rstrip())
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def as_plain_data(value: Any) -> Any:
    """Convert any experiment report to JSON-ready plain data.

    Dataclasses become dicts, enums become their values, dict keys are
    stringified when they are not already plain.  Lets downstream tooling
    (plots, CSV, regression tracking) consume every report uniformly:

    >>> import json
    >>> json.dumps(as_plain_data(report))  # doctest: +SKIP
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: as_plain_data(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {
            (key if isinstance(key, (str, int, float, bool)) or key is None
             else (key.value if isinstance(key, enum.Enum) else str(key))):
            as_plain_data(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [as_plain_data(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spread_phases(iterations: int, interval_ns: int, base_ns: int) -> List[int]:
    """Evenly spread switch times across one probe interval.

    The same-subnet experiment's loss count depends on where the switch
    lands relative to the 10 ms probe ticks; spreading start phases across
    the interval samples that uniformly (and deterministically).
    """
    return [base_ns + (index * interval_ns) // iterations
            for index in range(iterations)]
