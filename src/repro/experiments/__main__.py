"""Run every experiment and print paper-style reports.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments f6 f7      # just those experiments
    python -m repro.experiments --jobs 4   # shard trials across 4 workers
    python -m repro.experiments --figures  # ASCII renderings of fig. 6 & 7
    python -m repro.experiments --metrics  # append per-component counters
    python -m repro.experiments --list     # print ids and titles, exit

Experiment ids: ``e1`` (same-subnet switch), ``f6`` (device switching),
``f7`` (registration time-line), ``f3`` (routing options), ``a1``
(foreign-agent ablation), ``x1``-``x9`` (extensions; ``x4`` is the
sharded 100-1000-host home-agent fleet sweep, ``x5`` the fault-injection
chaos sweep, ``x6`` the TCP congestion-control sweep, ``x7`` the
10^3-10^6 aggregate fleet-scale sweep, ``x8`` the audited binding-plane
chaos grid under live registration load, ``x9`` the x5 fault grid re-run
over a receiver-limited RFC 9293 TCP session).

``--jobs N`` runs each experiment's independent trials across N worker
processes; reports are byte-identical to ``--jobs 1`` (seeds are
addressed by trial, not by worker).  ``--jobs 0`` uses one worker per
CPU.

``--profile`` prints an aggregated :meth:`Simulator.profile` after each
experiment's report: dispatch counts by label, queue high-water mark,
event-pool and packet-arena hit rates, simulated-vs-wall throughput.
Like ``--metrics`` it sees simulators built in this process; with
``--jobs > 1`` the trials that ran in workers contribute reports but not
profiles.

``--metrics`` captures every simulator an experiment builds — including
those built in worker processes, whose registries are merged back — and
prints the combined :mod:`repro.obs` registry after its report:
link/interface traffic, tunnel encap/decap, TCP retransmits,
registration latency histograms, and the engine's dispatch counters.
(Policy-table snapshots are parent-process only; with ``--jobs > 1``
they cover only trials that ran in-process.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import (
    capture_policy_tables,
    capture_simulators,
    format_policy_tables,
    format_reports,
)

from repro.experiments.exp_autoswitch import run_autoswitch_experiment
from repro.experiments.exp_chaos import run_chaos_experiment
from repro.experiments.exp_device_switch import run_device_switch_experiment
from repro.experiments.exp_fa_ablation import run_fa_ablation
from repro.experiments.exp_fleet_scale import run_fleet_scale_experiment
from repro.experiments.exp_plane_chaos import run_plane_chaos_experiment
from repro.experiments.exp_ha_scalability import (
    run_ha_fleet_sweep,
    run_ha_scalability_experiment,
)
from repro.experiments.exp_registration import run_registration_experiment
from repro.experiments.exp_routing_options import run_routing_options_experiment
from repro.experiments.exp_same_subnet import run_same_subnet_experiment
from repro.experiments.exp_smart_correspondent import (
    run_smart_correspondent_experiment,
)
from repro.experiments.exp_tcp_cc import run_tcp_cc_experiment
from repro.experiments.exp_tcp_chaos import run_tcp_chaos_experiment

RUNNERS = {
    "e1": ("Same-subnet address switch (Section 4)",
           lambda jobs: run_same_subnet_experiment(jobs=jobs).format_report()),
    "f6": ("Device switching overhead (Figure 6)",
           lambda jobs: run_device_switch_experiment(jobs=jobs).format_report()),
    "f7": ("Registration time-line (Figure 7)",
           lambda jobs: run_registration_experiment(jobs=jobs).format_report()),
    "f3": ("Routing options (Section 3.2 / Figure 3)",
           lambda jobs: run_routing_options_experiment(jobs=jobs).format_report()),
    "a1": ("Foreign-agent ablation (Section 5.1)",
           lambda jobs: run_fa_ablation(jobs=jobs).format_report()),
    "x1": ("Smart correspondents: reverse-path routing (extension)",
           lambda jobs: run_smart_correspondent_experiment(jobs=jobs)
           .format_report()),
    "x2": ("Home-agent scalability (Section 4's claim, extension)",
           lambda jobs: run_ha_scalability_experiment(jobs=jobs)
           .format_report()),
    "x3": ("Auto-switch probe cadence ablation (Section 6, extension)",
           lambda jobs: run_autoswitch_experiment(jobs=jobs).format_report()),
    "x4": ("Home-agent fleet sweep: 100-1000 hosts, sharded (extension)",
           lambda jobs: run_ha_fleet_sweep(jobs=jobs).format_report()),
    "x5": ("Chaos sweep: fault injection and recovery (extension)",
           lambda jobs: run_chaos_experiment(jobs=jobs).format_report()),
    "x6": ("TCP congestion control: Tahoe/Reno/CUBIC over mobility (extension)",
           lambda jobs: run_tcp_cc_experiment(jobs=jobs).format_report()),
    "x7": ("Fleet scale: 10^3-10^6 aggregate hosts on a consistent-hash "
           "home-agent plane (extension)",
           lambda jobs: run_fleet_scale_experiment(jobs=jobs).format_report()),
    "x8": ("Plane chaos: membership churn, partitions and crashes under "
           "live registration load, audited (extension)",
           lambda jobs: run_plane_chaos_experiment(jobs=jobs)
           .format_report()),
    "x9": ("TCP chaos: the x5 fault grid over a windowed RFC 9293 "
           "session (extension)",
           lambda jobs: run_tcp_chaos_experiment(jobs=jobs).format_report()),
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments and print their reports.")
    parser.add_argument("ids", nargs="*", metavar="id",
                        help=f"experiment ids to run "
                             f"(default: all of {', '.join(RUNNERS)})")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for trial execution "
                             "(1 = in-process, 0 = one per CPU; results "
                             "are identical at any value)")
    parser.add_argument("--metrics", action="store_true",
                        help="print merged metrics registries per experiment")
    parser.add_argument("--profile", action="store_true",
                        help="print the aggregated engine profile (dispatch "
                             "counts, queue high-water, pool hit rates) "
                             "after each experiment")
    parser.add_argument("--figures", action="store_true",
                        help="render ASCII figures 6 and 7 instead")
    parser.add_argument("--list", action="store_true", dest="list_ids",
                        help="print every experiment id and title, then exit")
    return parser


def aggregate_profiles(profiles: list) -> dict:
    """Fold per-simulator :meth:`Simulator.profile` dicts into one view.

    Monotonic quantities (events, wall time, pool reuses, dispatch counts)
    sum; the queue high-water is the max across simulators; the pool hit
    rate is recomputed from the summed totals.  ``packet_arenas`` is
    process-global, so the last profile's view is the current one.
    """
    total: dict = {
        "simulators": len(profiles),
        "events_run": 0,
        "sim_time_ns": 0,
        "wall_time_ns": 0,
        "queue_depth_max": 0,
        "dispatched_by_label": {},
        "event_pool": {"reuses": 0, "free": 0},
        "packet_arenas": {},
    }
    dispatched = total["dispatched_by_label"]
    for profile in profiles:
        total["events_run"] += profile["events_run"]
        total["sim_time_ns"] += profile["sim_time_ns"]
        total["wall_time_ns"] += profile["wall_time_ns"]
        total["queue_depth_max"] = max(total["queue_depth_max"],
                                       profile["queue_depth_max"])
        for label, count in profile["dispatched_by_label"].items():
            dispatched[label] = dispatched.get(label, 0) + count
        pool = profile["event_pool"]
        total["event_pool"]["reuses"] += pool["reuses"]
        total["event_pool"]["free"] += pool["free"]
        total["packet_arenas"] = profile["packet_arenas"]
    events = total["events_run"]
    total["event_pool"]["hit_rate"] = (
        total["event_pool"]["reuses"] / events if events else 0.0)
    wall = total["wall_time_ns"]
    total["sim_to_wall_ratio"] = (total["sim_time_ns"] / wall) if wall else None
    total["dispatched_by_label"] = dict(sorted(dispatched.items()))
    return total


def main(argv: list) -> int:
    try:
        return _run(argv)
    except OSError as exc:
        # A full disk or closed pipe under shell redirection must not look
        # like a successful run to CI.
        print(f"error: failed to write report output: {exc}", file=sys.stderr)
        return 1


def _run(argv: list) -> int:
    args = _parser().parse_args(argv)
    if args.list_ids:
        for name, (title, _) in RUNNERS.items():
            print(f"{name}  {title}")
        return _flush_stdout()
    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    if args.figures:
        from repro.experiments.figures import render_figure6, render_figure7

        print(render_figure7(run_registration_experiment(jobs=args.jobs)))
        print()
        print(render_figure6(run_device_switch_experiment(jobs=args.jobs)))
        return _flush_stdout()
    requested = [name.lower() for name in args.ids] or list(RUNNERS)
    unknown = [name for name in requested if name not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}; "
              f"valid: {', '.join(RUNNERS)}", file=sys.stderr)
        return 2
    for name in requested:
        title, runner = RUNNERS[name]
        banner = f"=== {name}: {title} ==="
        print(banner)
        if args.metrics or args.profile:
            with capture_simulators() as captured, \
                    capture_policy_tables() as tables:
                report = runner(args.jobs)
            print(report)
            if args.metrics:
                print()
                print(format_reports((sim.metrics for sim in captured),
                                     title=f"{name} metrics"))
                if tables:
                    print(format_policy_tables(tables))
            if args.profile:
                print()
                print(f"--- {name} engine profile "
                      f"({len(captured)} simulators) ---")
                print(json.dumps(
                    aggregate_profiles([sim.profile() for sim in captured]),
                    indent=2, sort_keys=True))
        else:
            print(runner(args.jobs))
        print()
    return _flush_stdout()


def _flush_stdout() -> int:
    """Force buffered report text out while we can still report failure."""
    sys.stdout.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
