"""Run every experiment and print paper-style reports.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments f6 f7      # just those experiments
    python -m repro.experiments --figures  # ASCII renderings of fig. 6 & 7
    python -m repro.experiments --metrics  # append per-component counters

Experiment ids: ``e1`` (same-subnet switch), ``f6`` (device switching),
``f7`` (registration time-line), ``f3`` (routing options), ``a1``
(foreign-agent ablation), ``x1``-``x3`` (extensions).

``--metrics`` captures every simulator an experiment builds and prints the
merged :mod:`repro.obs` registry after its report: link/interface traffic,
tunnel encap/decap, TCP retransmits, registration latency histograms, and
the engine's dispatch counters.
"""

from __future__ import annotations

import sys

from repro.obs import (
    capture_policy_tables,
    capture_simulators,
    format_policy_tables,
    format_reports,
)

from repro.experiments.exp_autoswitch import run_autoswitch_experiment
from repro.experiments.exp_device_switch import run_device_switch_experiment
from repro.experiments.exp_fa_ablation import run_fa_ablation
from repro.experiments.exp_ha_scalability import run_ha_scalability_experiment
from repro.experiments.exp_registration import run_registration_experiment
from repro.experiments.exp_routing_options import run_routing_options_experiment
from repro.experiments.exp_same_subnet import run_same_subnet_experiment
from repro.experiments.exp_smart_correspondent import (
    run_smart_correspondent_experiment,
)

RUNNERS = {
    "e1": ("Same-subnet address switch (Section 4)",
           lambda: run_same_subnet_experiment().format_report()),
    "f6": ("Device switching overhead (Figure 6)",
           lambda: run_device_switch_experiment().format_report()),
    "f7": ("Registration time-line (Figure 7)",
           lambda: run_registration_experiment().format_report()),
    "f3": ("Routing options (Section 3.2 / Figure 3)",
           lambda: run_routing_options_experiment().format_report()),
    "a1": ("Foreign-agent ablation (Section 5.1)",
           lambda: run_fa_ablation().format_report()),
    "x1": ("Smart correspondents: reverse-path routing (extension)",
           lambda: run_smart_correspondent_experiment().format_report()),
    "x2": ("Home-agent scalability (Section 4's claim, extension)",
           lambda: run_ha_scalability_experiment().format_report()),
    "x3": ("Auto-switch probe cadence ablation (Section 6, extension)",
           lambda: run_autoswitch_experiment().format_report()),
}


def main(argv: list) -> int:
    if "--figures" in argv:
        from repro.experiments.figures import render_figure6, render_figure7

        print(render_figure7(run_registration_experiment()))
        print()
        print(render_figure6(run_device_switch_experiment()))
        return 0
    with_metrics = "--metrics" in argv
    requested = [arg.lower() for arg in argv
                 if arg != "--metrics"] or list(RUNNERS)
    unknown = [name for name in requested if name not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}; "
              f"valid: {', '.join(RUNNERS)}", file=sys.stderr)
        return 2
    for name in requested:
        title, runner = RUNNERS[name]
        banner = f"=== {name}: {title} ==="
        print(banner)
        if with_metrics:
            with capture_simulators() as captured, \
                    capture_policy_tables() as tables:
                report = runner()
            print(report)
            print()
            print(format_reports((sim.metrics for sim in captured),
                                 title=f"{name} metrics"))
            if tables:
                print(format_policy_tables(tables))
        else:
            print(runner())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
