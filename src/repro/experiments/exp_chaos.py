"""Chaos experiment (x5): does a session survive a hostile half-minute?

The paper's robustness claims are qualitative ("the foreign agent is no
longer a single point of failure", recovery "if the home agent ... has
crashed").  This experiment quantifies them: a correspondent streams UDP
echo probes at a mobile host for 30 simulated seconds while a
:class:`~repro.faults.FaultPlan` throws everything the architecture is
supposed to absorb at it —

* a Gilbert-Elliott bursty-loss phase on the department segment
  (intensity swept via ``loss_rate``),
* periodic Ethernet interface flaps (cadence swept via
  ``flap_period_ms``; the auto-switcher may fail over to the radio),
* a home-agent restart that loses every binding (recovered by the
  mobile host's lifetime-expiry re-registration),
* a DHCP server outage,
* a registration-reply drop window (recovered by capped exponential
  backoff retransmission).

Reported per sweep point: delivery rate, the longest outage (recovery
latency), whether the session was alive in the final five seconds
(survival), plus the recovery machinery's work — renewals sent,
registration retransmissions, bindings expired, faults injected.

Each sweep point is an independent :class:`~repro.parallel.Trial`; the
same seed yields byte-identical reports at any ``--jobs`` value because
both the fault schedule and every fault's randomness are derived from
the trial's own simulator seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.config import Config, DEFAULT_CONFIG
from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.experiments.harness import format_table
from repro.faults import (
    DhcpOutage,
    FaultInjector,
    FaultPlan,
    GilbertElliottPhase,
    HomeAgentRestart,
    InterfaceFlap,
    ReplyDropWindow,
)
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

#: Sweep grid: Gilbert-Elliott burst intensity x Ethernet flap cadence.
DEFAULT_LOSS_RATES = (0.0, 0.2)
DEFAULT_FLAP_PERIODS_MS = (0, 7000)

ECHO_INTERVAL = ms(100)
#: Binding lifetime for the chaos runs: short enough that the home-agent
#: restart is healed by a half-life renewal well inside the horizon.
CHAOS_LIFETIME = ms(6000)
WARMUP = s(1)
HORIZON = s(30)
SURVIVAL_WINDOW = s(5)


@dataclass
class ChaosPoint:
    """One sweep point's outcome."""

    loss_rate: float
    flap_period_ms: float
    probes_sent: int
    delivered_pct: float
    longest_outage_ms: float
    survived: bool
    renewals: int
    reg_retries: int
    bindings_expired: int
    faults_injected: int


@dataclass
class ChaosReport:
    points: List[ChaosPoint] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the sweep as a plain-text table."""
        rows = [(f"{point.loss_rate:g}",
                 f"{point.flap_period_ms:g}",
                 f"{point.delivered_pct:.1f}",
                 f"{point.longest_outage_ms:.0f}",
                 "yes" if point.survived else "NO",
                 point.renewals,
                 point.reg_retries,
                 point.bindings_expired,
                 point.faults_injected)
                for point in self.points]
        table = format_table(("loss rate", "flap period ms", "delivered %",
                              "longest outage ms", "survived", "renewals",
                              "reg retries", "bindings expired", "faults"),
                             rows)
        return ("Chaos sweep: session survival under injected faults "
                "(loss phase, flaps, HA restart, DHCP outage, reply drops)\n"
                + table)


def _build_plan(loss_rate: float, flap_period_ns: int,
                dept_link: str, eth_interface: str) -> FaultPlan:
    """The deterministic fault schedule for one sweep point."""
    events: list = [
        HomeAgentRestart(at=s(14), down_for=s(2)),
        DhcpOutage(at=s(17), duration=s(3)),
        ReplyDropWindow(at=s(20), duration=ms(1500)),
    ]
    if loss_rate > 0.0:
        events.append(GilbertElliottPhase(
            at=s(5), link=dept_link, duration=s(6),
            p_good_bad=loss_rate, p_bad_good=0.25,
            loss_good=0.0, loss_bad=0.9))
    if flap_period_ns > 0:
        at = s(6)
        while at < s(24):
            events.append(InterfaceFlap(at=at, interface=eth_interface,
                                        down_for=ms(1200)))
            at += flap_period_ns
    return FaultPlan.of(*events)


def run_chaos_trial(loss_rate: float, flap_period_ns: int, seed: int,
                    config: Config = DEFAULT_CONFIG) -> dict:
    """One chaos run as a pure trial: (params, seed) -> plain data."""
    chaos_config = config.with_overrides(
        registration=replace(config.registration,
                             renewal_fraction=0.5,
                             default_lifetime=CHAOS_LIFETIME))
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, chaos_config,
                            with_remote_correspondent=False, with_dhcp=True)
    addresses = testbed.addresses
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    sim.run_for(WARMUP)

    manager = ConnectivityManager(testbed.mobile)
    manager.add_option(AttachmentOption(
        name="ethernet", interface=testbed.mh_eth,
        care_of=addresses.mh_dept_care_of, subnet=addresses.dept_net,
        gateway=addresses.router_dept))
    manager.add_option(AttachmentOption(
        name="radio", interface=testbed.mh_radio,
        care_of=addresses.mh_radio, subnet=addresses.radio_net,
        gateway=addresses.router_radio, score=1.0))
    manager.start()

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=ECHO_INTERVAL)
    stream.start()

    plan = _build_plan(loss_rate, flap_period_ns,
                       dept_link=testbed.dept_segment.name,
                       eth_interface=testbed.mh_eth.name)
    injector = FaultInjector.for_testbed(testbed, plan)
    injector.arm()

    sim.run_for(HORIZON - WARMUP)
    stream.stop()
    sim.run_for(s(3))  # let stragglers land before counting loss

    sent = stream.sent
    delivered_pct = (100.0 * stream.received / sent) if sent else 0.0
    survived = stream.received_count(since=HORIZON - SURVIVAL_WINDOW) > 0
    retries = sim.metrics.counter("registration", "retries",
                                  host=testbed.mobile.name).value
    return {
        "loss_rate": loss_rate,
        "flap_period_ms": flap_period_ns / 1e6,
        "probes_sent": sent,
        "delivered_pct": delivered_pct,
        "longest_outage_ms": stream.longest_outage() * ECHO_INTERVAL / 1e6,
        "survived": survived,
        "renewals": testbed.mobile.renewals_sent,
        "reg_retries": retries,
        "bindings_expired": testbed.home_agent.bindings_expired,
        "faults_injected": injector.total_injected(),
    }


def build_chaos_trials(loss_rates: Sequence[float],
                       flap_periods_ms: Sequence[float],
                       seed: int, config: Config) -> List[Trial]:
    """One trial per grid cell, seed = base + cell index."""
    trials = []
    index = 0
    for loss_rate in loss_rates:
        for flap_period_ms in flap_periods_ms:
            trials.append(Trial(
                "repro.experiments.exp_chaos:run_chaos_trial",
                dict(loss_rate=loss_rate, flap_period_ns=ms(flap_period_ms),
                     seed=seed + index, config=config)))
            index += 1
    return trials


def merge_chaos_trials(results: List[dict]) -> ChaosReport:
    """Reassemble ordered grid results into the report."""
    report = ChaosReport()
    for result in results:
        report.points.append(ChaosPoint(**result))
    return report


def run_chaos_experiment(loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
                         flap_periods_ms: Sequence[float] = DEFAULT_FLAP_PERIODS_MS,
                         seed: int = 97,
                         config: Config = DEFAULT_CONFIG,
                         jobs: int = 1,
                         runner: Optional[ParallelRunner] = None
                         ) -> ChaosReport:
    """Sweep loss intensity x flap cadence; each cell is one trial."""
    trials = build_chaos_trials(loss_rates, flap_periods_ms, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_chaos_trials(results)


if __name__ == "__main__":  # pragma: no cover
    print(run_chaos_experiment().format_report())
