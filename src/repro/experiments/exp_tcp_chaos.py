"""TCP chaos experiment (x9): the x5 grid over a *windowed* transport.

x5 established that the mobility plane survives a hostile half-minute —
measured with stateless UDP probes.  This experiment re-runs the same
fault grid (Gilbert-Elliott bursty loss x Ethernet interface flaps, plus
the fixed home-agent restart / DHCP outage / reply-drop schedule) with
the thing the paper actually cares about as the measurement instrument: a
long-lived TCP session under RFC 9293 flow control.

The transfer is receiver-limited by construction: the correspondent
offers ~100 kbit/s while the mobile host's application drains its
2 KiB receive buffer at half that, so the advertised window breathes
between full and closed for the whole run.  Every fault therefore lands
on a connection that is mid-stall or mid-window-update, exercising the
interactions the vertical-handover literature warns about (a zero-window
stall is indistinguishable from an outage until the persist probe gets
through).  Reported per cell: application goodput, total time the sender
sat in zero-window, persist probes sent, delayed ACKs on the receiver,
retransmission work, recovery latency after the home-agent restart, and
whether data was still flowing in the final five seconds.

Each cell is one :class:`~repro.parallel.Trial` (seed = base + cell
index), so reports are byte-identical at any ``--jobs`` value.  The cell
itself is built through the :class:`~repro.api.Scenario` facade with the
new ``tcp_*`` knobs via ``with_config``; the fault schedule is imported
from x5 so the two experiments stay in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.api import Scenario
from repro.config import Config, DEFAULT_CONFIG
from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.experiments.exp_chaos import (
    CHAOS_LIFETIME,
    DEFAULT_FLAP_PERIODS_MS,
    DEFAULT_LOSS_RATES,
    HORIZON,
    SURVIVAL_WINDOW,
    WARMUP,
    _build_plan,
)
from repro.experiments.harness import format_table
from repro.faults import FaultInjector
from repro.net.host import Host
from repro.net.packet import AppData
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.units import ms, s
from repro.testbed.topology import Testbed
from repro.workloads.tcp_session import TcpBulkSender, TcpDrainReceiver

#: Offered load: one 256-byte chunk every 20 ms (~100 kbit/s).
SEND_INTERVAL = ms(20)
CHUNK_BYTES = 256
#: Application drain: 320 bytes every 50 ms (~51 kbit/s) — half the
#: offered load, so the window is the binding constraint throughout.
DRAIN_BYTES = 320
DRAIN_INTERVAL = ms(50)
#: Receive buffer small enough that a closed window is routine.
RECV_BUFFER = 2048
#: The modern stack: Reno + SACK under the new flow-control knobs.
TRANSPORT_CC = "reno"
#: The home-agent restart lands at s(14) in the x5 schedule; recovery is
#: measured from there.
HA_RESTART_AT = s(14)
DRAIN_TAIL = s(3)


class WindowedReceiver(TcpDrainReceiver):
    """Drain-rate receiver that also timestamps every app delivery."""

    def __init__(self, host: Host, drain_bytes: int = DRAIN_BYTES,
                 drain_interval: int = DRAIN_INTERVAL) -> None:
        super().__init__(host, drain_bytes, drain_interval)
        self.bytes_total = 0
        #: (sim time ns, payload bytes) per application delivery.
        self.arrivals: List[Tuple[int, int]] = []

    def _on_data(self, data: AppData) -> None:
        super()._on_data(data)
        self.bytes_total += data.size_bytes
        self.arrivals.append((self.host.sim.now, data.size_bytes))

    def first_arrival_after(self, when: int) -> Optional[int]:
        """Timestamp of the first delivery at or after *when*, or None."""
        for at, _ in self.arrivals:
            if at >= when:
                return at
        return None

    def received_after(self, since: int) -> int:
        """Deliveries at or after *since* (the survival check)."""
        return sum(1 for at, _ in self.arrivals if at >= since)


@dataclass
class TcpChaosPoint:
    """One grid cell's outcome."""

    loss_rate: float
    flap_period_ms: float
    goodput_kbps: float
    zero_window_ms: float
    persist_probes: int
    delayed_acks: int
    retransmits: int
    rto_expirations: int
    recovery_ms: float  # first delivery after the HA restart; -1 if none
    survived: bool


@dataclass
class TcpChaosReport:
    points: List[TcpChaosPoint] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the grid as a plain-text table."""
        rows = [(f"{point.loss_rate:g}",
                 f"{point.flap_period_ms:g}",
                 f"{point.goodput_kbps:.1f}",
                 f"{point.zero_window_ms:.0f}",
                 point.persist_probes,
                 point.delayed_acks,
                 point.retransmits,
                 point.rto_expirations,
                 f"{point.recovery_ms:.0f}" if point.recovery_ms >= 0 else "-",
                 "yes" if point.survived else "NO")
                for point in self.points]
        table = format_table(("loss rate", "flap period ms", "goodput kbps",
                              "zero-window ms", "probes", "delayed acks",
                              "retrans", "rtos", "recovery ms", "survived"),
                             rows)
        return ("TCP chaos grid: the x5 fault schedule over a "
                "receiver-limited RFC 9293 session\n"
                "(flow control + delayed ACKs + Reno/SACK; drain at half "
                "the offered load)\n" + table)


def run_tcp_chaos_trial(loss_rate: float, flap_period_ns: int, seed: int,
                        config: Config = DEFAULT_CONFIG) -> dict:
    """One grid cell as a pure trial: (params, seed) -> plain data."""
    session: dict = {}

    def start_session(testbed: Testbed) -> dict:
        addresses = testbed.addresses
        testbed.visit_dept()
        testbed.connect_radio(register=False)

        def after_warmup() -> None:
            manager = ConnectivityManager(testbed.mobile)
            manager.add_option(AttachmentOption(
                name="ethernet", interface=testbed.mh_eth,
                care_of=addresses.mh_dept_care_of, subnet=addresses.dept_net,
                gateway=addresses.router_dept))
            manager.add_option(AttachmentOption(
                name="radio", interface=testbed.mh_radio,
                care_of=addresses.mh_radio, subnet=addresses.radio_net,
                gateway=addresses.router_radio, score=1.0))
            manager.start()
            receiver = WindowedReceiver(testbed.mobile)
            sender = TcpBulkSender(testbed.correspondent, addresses.mh_home,
                                   interval=SEND_INTERVAL,
                                   chunk_bytes=CHUNK_BYTES)
            sender.start()
            testbed.sim.call_later(HORIZON - WARMUP, sender.stop,
                                   label="tcp-chaos-stop")
            session.update(receiver=receiver, sender=sender, manager=manager)

        testbed.sim.call_at(WARMUP, after_warmup, label="tcp-chaos-start")
        plan = _build_plan(loss_rate, flap_period_ns,
                           dept_link=testbed.dept_segment.name,
                           eth_interface=testbed.mh_eth.name)
        injector = FaultInjector.for_testbed(testbed, plan)
        injector.arm()
        session["injector"] = injector
        return session

    reg_config = config.with_overrides(
        registration=replace(config.registration,
                             renewal_fraction=0.5,
                             default_lifetime=CHAOS_LIFETIME))
    scenario = (Scenario(seed=seed, config=reg_config)
                .with_config(tcp_flow_control=True,
                             tcp_recv_buffer=RECV_BUFFER,
                             tcp_delayed_ack=True,
                             tcp_sack=True,
                             tcp_congestion_control=TRANSPORT_CC)
                .with_testbed(with_remote_correspondent=False, with_dhcp=True)
                .with_workload(start_session, name="session"))
    result = scenario.run(duration=HORIZON + DRAIN_TAIL)

    testbed = result.testbed
    receiver: WindowedReceiver = session["receiver"]
    sender: TcpBulkSender = session["sender"]
    sender_conn = sender.connection
    stream_time = HORIZON - WARMUP
    goodput_kbps = receiver.bytes_total * 8 / (stream_time / 1e9) / 1e3
    recovery_ms = -1.0
    first = receiver.first_arrival_after(HA_RESTART_AT)
    if first is not None:
        recovery_ms = (first - HA_RESTART_AT) / 1e6
    survived = receiver.received_after(HORIZON - SURVIVAL_WINDOW) > 0
    metrics = result.sim.metrics
    sender_host = testbed.correspondent.name
    receiver_conn = receiver.connection
    return {
        "loss_rate": loss_rate,
        "flap_period_ms": flap_period_ns / 1e6,
        "goodput_kbps": goodput_kbps,
        "zero_window_ms": sender_conn.zero_window_ns / 1e6,
        "persist_probes": sender_conn.persist_probes,
        "delayed_acks": (receiver_conn.delayed_acks
                         if receiver_conn is not None else 0),
        "retransmits": metrics.counter("tcp", "retransmits",
                                       host=sender_host).value,
        "rto_expirations": metrics.counter("tcp", "rto_expirations",
                                           host=sender_host).value,
        "recovery_ms": recovery_ms,
        "survived": survived,
    }


def build_tcp_chaos_trials(loss_rates: Sequence[float],
                           flap_periods_ms: Sequence[float],
                           seed: int, config: Config) -> List[Trial]:
    """One trial per grid cell, seed = base + cell index."""
    trials = []
    index = 0
    for loss_rate in loss_rates:
        for flap_period_ms in flap_periods_ms:
            trials.append(Trial(
                "repro.experiments.exp_tcp_chaos:run_tcp_chaos_trial",
                dict(loss_rate=loss_rate, flap_period_ns=ms(flap_period_ms),
                     seed=seed + index, config=config)))
            index += 1
    return trials


def merge_tcp_chaos_trials(results: List[dict]) -> TcpChaosReport:
    """Reassemble ordered grid results into the report."""
    report = TcpChaosReport()
    for result in results:
        report.points.append(TcpChaosPoint(**result))
    return report


def run_tcp_chaos_experiment(
        loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
        flap_periods_ms: Sequence[float] = DEFAULT_FLAP_PERIODS_MS,
        seed: int = 131,
        config: Config = DEFAULT_CONFIG,
        jobs: int = 1,
        runner: Optional[ParallelRunner] = None) -> TcpChaosReport:
    """Sweep loss intensity x flap cadence; each cell is one trial."""
    trials = build_tcp_chaos_trials(loss_rates, flap_periods_ms, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_tcp_chaos_trials(results)


if __name__ == "__main__":  # pragma: no cover
    print(run_tcp_chaos_experiment().format_report())
