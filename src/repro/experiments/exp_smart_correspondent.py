"""Extension ablation: smart correspondent hosts (reverse-path routing).

The paper defers reverse-path optimization ("these optimizations require
the correspondent host to be able to locate the mobile host at its care-of
address") but names the enabler: *smart correspondent hosts* that receive
binding updates like the home agent does.  This experiment measures what
the deferred optimization would have bought:

* the mobile host visits the department network; the home agent runs on
  its own host on the home subnet (so the detour is a real path, as in
  any non-trivial deployment);
* a plain correspondent reaches the mobile host via the home agent's
  tunnel; a smart correspondent tunnels directly to the care-of address;
* we compare echo RTT and count how much traffic the home agent carries.

Also measured: robustness — when the smart correspondent's cache expires,
traffic falls back to the basic protocol without loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config, DEFAULT_CONFIG
from repro.core.smart_correspondent import SmartCorrespondent
from repro.experiments.harness import Stats, format_table, summarize_ms
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


@dataclass
class SmartCorrespondentReport:
    """Plain vs optimized reverse path."""

    probes: int
    rtt_plain: Stats
    rtt_optimized: Stats
    ha_packets_plain: int
    ha_packets_optimized: int
    fallback_lossless: bool

    @property
    def speedup(self) -> float:
        """Plain RTT divided by optimized RTT."""
        if self.rtt_optimized.mean == 0:
            return 0.0
        return self.rtt_plain.mean / self.rtt_optimized.mean

    def format_report(self) -> str:
        """Render the plain-vs-smart comparison."""
        rows = [
            ("plain correspondent", self.rtt_plain.format_ms(),
             self.ha_packets_plain),
            ("smart correspondent", self.rtt_optimized.format_ms(),
             self.ha_packets_optimized),
        ]
        table = format_table(("configuration", "echo RTT ms (std)",
                              "packets tunneled by HA"), rows)
        return (f"Smart-correspondent ablation "
                f"({self.probes} probes per configuration)\n{table}\n"
                f"reverse-path speedup: {self.speedup:.2f}x; cache-expiry "
                f"fallback lossless: {self.fallback_lossless}")


def _measure(seed: int, config: Config, smart: bool,
             probes: int) -> tuple:
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    correspondent = testbed.correspondent
    optimizer = None
    if smart:
        optimizer = SmartCorrespondent(correspondent)
        testbed.mobile.add_smart_correspondent(testbed.addresses.ch_dept)
    testbed.visit_dept()
    sim.run_for(s(2))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(correspondent, testbed.addresses.mh_home,
                           interval=ms(100))
    stream.start()
    sim.run_for(ms(100) * probes)
    stream.stop()
    sim.run_for(s(1))
    assert optimizer is None or optimizer.packets_optimized > 0
    return (summarize_ms(stream.rtts()),
            testbed.home_agent.vif.packets_encapsulated)


def _fallback_lossless(seed: int, config: Config) -> bool:
    """Let the cached binding expire mid-stream; traffic must continue
    (through the home agent) without loss."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    smart = SmartCorrespondent(testbed.correspondent)
    testbed.mobile.add_smart_correspondent(testbed.addresses.ch_dept)
    testbed.visit_dept(register=False)
    testbed.mobile.register_current(lifetime=s(3))
    sim.run_for(s(1))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, testbed.addresses.mh_home,
                           interval=ms(100))
    stream.start()
    # Keep the HA binding alive past the CH cache's expiry.
    sim.call_later(s(2), lambda: testbed.mobile.registration.register(
        testbed.mobile.care_of, on_done=lambda outcome: None,
        via=testbed.mobile.active_interface, lifetime=s(60)))
    sim.run_for(s(6))
    stream.stop()
    sim.run_for(s(1))
    return (smart.cached_care_of(testbed.addresses.mh_home) is None
            and stream.lost_count() == 0)


def run_smart_correspondent_experiment(probes: int = 30, seed: int = 67,
                                       config: Config = DEFAULT_CONFIG
                                       ) -> SmartCorrespondentReport:
    rtt_plain, ha_plain = _measure(seed, config, smart=False, probes=probes)
    rtt_smart, ha_smart = _measure(seed + 1, config, smart=True,
                                   probes=probes)
    lossless = _fallback_lossless(seed + 2, config)
    return SmartCorrespondentReport(probes=probes, rtt_plain=rtt_plain,
                                    rtt_optimized=rtt_smart,
                                    ha_packets_plain=ha_plain,
                                    ha_packets_optimized=ha_smart,
                                    fallback_lossless=lossless)


if __name__ == "__main__":  # pragma: no cover
    print(run_smart_correspondent_experiment().format_report())
