"""Extension ablation: smart correspondent hosts (reverse-path routing).

The paper defers reverse-path optimization ("these optimizations require
the correspondent host to be able to locate the mobile host at its care-of
address") but names the enabler: *smart correspondent hosts* that receive
binding updates like the home agent does.  This experiment measures what
the deferred optimization would have bought:

* the mobile host visits the department network; the home agent runs on
  its own host on the home subnet (so the detour is a real path, as in
  any non-trivial deployment);
* a plain correspondent reaches the mobile host via the home agent's
  tunnel; a smart correspondent tunnels directly to the care-of address;
* we compare echo RTT and count how much traffic the home agent carries.

Also measured: robustness — when the smart correspondent's cache expires,
traffic falls back to the basic protocol without loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.smart_correspondent import SmartCorrespondent
from repro.experiments.harness import Stats, format_table, summarize_ms
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


@dataclass
class SmartCorrespondentReport:
    """Plain vs optimized reverse path."""

    probes: int
    rtt_plain: Stats
    rtt_optimized: Stats
    ha_packets_plain: int
    ha_packets_optimized: int
    fallback_lossless: bool

    @property
    def speedup(self) -> float:
        """Plain RTT divided by optimized RTT."""
        if self.rtt_optimized.mean == 0:
            return 0.0
        return self.rtt_plain.mean / self.rtt_optimized.mean

    def format_report(self) -> str:
        """Render the plain-vs-smart comparison."""
        rows = [
            ("plain correspondent", self.rtt_plain.format_ms(),
             self.ha_packets_plain),
            ("smart correspondent", self.rtt_optimized.format_ms(),
             self.ha_packets_optimized),
        ]
        table = format_table(("configuration", "echo RTT ms (std)",
                              "packets tunneled by HA"), rows)
        return (f"Smart-correspondent ablation "
                f"({self.probes} probes per configuration)\n{table}\n"
                f"reverse-path speedup: {self.speedup:.2f}x; cache-expiry "
                f"fallback lossless: {self.fallback_lossless}")


def _measure(seed: int, config: Config, smart: bool,
             probes: int) -> tuple:
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    correspondent = testbed.correspondent
    optimizer = None
    if smart:
        optimizer = SmartCorrespondent(correspondent)
        testbed.mobile.add_smart_correspondent(testbed.addresses.ch_dept)
    testbed.visit_dept()
    sim.run_for(s(2))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(correspondent, testbed.addresses.mh_home,
                           interval=ms(100))
    stream.start()
    sim.run_for(ms(100) * probes)
    stream.stop()
    sim.run_for(s(1))
    assert optimizer is None or optimizer.packets_optimized > 0
    return (list(stream.rtts()),
            testbed.home_agent.vif.packets_encapsulated)


def _fallback_lossless(seed: int, config: Config) -> bool:
    """Let the cached binding expire mid-stream; traffic must continue
    (through the home agent) without loss."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    smart = SmartCorrespondent(testbed.correspondent)
    testbed.mobile.add_smart_correspondent(testbed.addresses.ch_dept)
    testbed.visit_dept(register=False)
    testbed.mobile.register_current(lifetime=s(3))
    sim.run_for(s(1))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, testbed.addresses.mh_home,
                           interval=ms(100))
    stream.start()
    # Keep the HA binding alive past the CH cache's expiry.
    sim.call_later(s(2), lambda: testbed.mobile.registration.register(
        testbed.mobile.care_of, on_done=lambda outcome: None,
        via=testbed.mobile.active_interface, lifetime=s(60)))
    sim.run_for(s(6))
    stream.stop()
    sim.run_for(s(1))
    return (smart.cached_care_of(testbed.addresses.mh_home) is None
            and stream.lost_count() == 0)


def run_smart_measure_trial(smart: bool, probes: int, seed: int,
                            config: Config = DEFAULT_CONFIG) -> dict:
    """Plain or smart correspondent measurement as a pure trial."""
    rtts, ha_packets = _measure(seed, config, smart=smart, probes=probes)
    return {"rtts_ns": rtts, "ha_packets": ha_packets}


def run_smart_fallback_trial(seed: int,
                             config: Config = DEFAULT_CONFIG) -> dict:
    """The cache-expiry fallback check as a pure trial."""
    return {"lossless": _fallback_lossless(seed, config)}


def build_smart_correspondent_trials(probes: int, seed: int,
                                     config: Config) -> List[Trial]:
    """Three independent trials: plain, smart, fallback."""
    measure = ("repro.experiments.exp_smart_correspondent:"
               "run_smart_measure_trial")
    return [
        Trial(measure, dict(smart=False, probes=probes, seed=seed,
                            config=config)),
        Trial(measure, dict(smart=True, probes=probes, seed=seed + 1,
                            config=config)),
        Trial("repro.experiments.exp_smart_correspondent:"
              "run_smart_fallback_trial",
              dict(seed=seed + 2, config=config)),
    ]


def merge_smart_correspondent_trials(results: List[dict],
                                     probes: int) -> SmartCorrespondentReport:
    """Assemble the (plain, smart, fallback) triple into the report."""
    plain, smart, fallback = results
    return SmartCorrespondentReport(
        probes=probes,
        rtt_plain=summarize_ms(plain["rtts_ns"]),
        rtt_optimized=summarize_ms(smart["rtts_ns"]),
        ha_packets_plain=plain["ha_packets"],
        ha_packets_optimized=smart["ha_packets"],
        fallback_lossless=fallback["lossless"])


def run_smart_correspondent_experiment(probes: int = 30, seed: int = 67,
                                       config: Config = DEFAULT_CONFIG,
                                       jobs: int = 1,
                                       runner: Optional[ParallelRunner] = None
                                       ) -> SmartCorrespondentReport:
    """Compare plain vs smart correspondents (three parallel trials)."""
    trials = build_smart_correspondent_trials(probes, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_smart_correspondent_trials(results, probes)


if __name__ == "__main__":  # pragma: no cover
    print(run_smart_correspondent_experiment().format_report())
