"""ASCII renderings of the paper's figures from measured reports.

The reports' ``format_report()`` methods give compact tables; these
renderers reproduce the *figures* — Figure 6's per-case histograms with
iteration counts on the y-axis, and Figure 7's proportional time-line —
so a terminal diff against the paper is possible at a glance.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.handoff import (
    STAGE_CONFIGURE,
    STAGE_POST,
    STAGE_ROUTE_UPDATE,
)
from repro.experiments.exp_device_switch import DeviceSwitchReport, SwitchCase
from repro.experiments.exp_registration import RegistrationReport


def render_histogram(counts: Dict[int, int], height: int = 10,
                     x_label: str = "packets lost") -> str:
    """A vertical bar chart: x = value, y = occurrences (Figure 6 style)."""
    if not counts:
        return "(no data)"
    max_value = max(counts)
    peak = max(counts.values())
    scale = max(peak, 1)
    rows: List[str] = []
    for level in range(min(height, scale), 0, -1):
        threshold = level * scale / min(height, scale)
        cells = []
        for value in range(max_value + 1):
            filled = counts.get(value, 0) >= threshold
            cells.append(" # " if filled else "   ")
        label = f"{int(threshold):>3} |" if level in (min(height, scale), 1) \
            else "    |"
        rows.append(label + "".join(cells))
    axis = "    +" + "---" * (max_value + 1)
    ticks = "     " + "".join(f"{value:^3}" for value in range(max_value + 1))
    rows.append(axis)
    rows.append(ticks)
    rows.append(f"     {x_label}")
    return "\n".join(rows)


def render_figure6(report: DeviceSwitchReport) -> str:
    """The four histograms of Figure 6, side by side vertically."""
    blocks = [f"Figure 6 — device switching overhead "
              f"({report.iterations} iterations per case)"]
    for case in SwitchCase:
        result = report.cases[case]
        blocks.append(f"\n{case.value}:")
        blocks.append(render_histogram(result.loss_histogram))
    return "\n".join(blocks)


def render_figure7(report: RegistrationReport, width: int = 48) -> str:
    """Figure 7's time-line: proportional horizontal bars per step."""
    steps = [
        ("configure interface", report.stages[STAGE_CONFIGURE].mean),
        ("change route table", report.stages[STAGE_ROUTE_UPDATE].mean),
        ("registration req->reply", report.request_reply.mean),
        ("post-registration", report.stages[STAGE_POST].mean),
    ]
    total = report.total.mean
    longest = max(duration for _, duration in steps)
    lines = [f"Figure 7 — registration time-line "
             f"(total {total:.2f} ms, average of {report.iterations} tests)"]
    for label, duration in steps:
        bar = "#" * max(1, int(round(duration / longest * width)))
        lines.append(f"  {label:<26}|{bar:<{width}}| {duration:5.2f} ms")
    marker = " " * 28 + "^" + " " * (width - 2) + "^"
    lines.append(marker)
    lines.append(" " * 28 + "start" + " " * (width - 9) + "end")
    return "\n".join(lines)
