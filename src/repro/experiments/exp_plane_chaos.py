"""Plane chaos (x8): membership churn and partitions under real load.

x7 scaled the binding plane statistically; this experiment goes back to
*real* traffic and attacks the plane itself.  Each shard simulates up to
:data:`SHARD_HOSTS` mobile hosts — every one a live
:class:`~repro.core.registration.RegistrationClient` on its own
point-to-point access link — registering against a
:class:`~repro.core.binding_shard.BindingShardPlane` of home-agent
replicas while a fault plan throws the binding plane's worst days at it:

* a **crash-join** (:class:`~repro.faults.plan.ReplicaJoin`): a spare
  replica enters the ring empty and wins its arcs back through ordinary
  renewals;
* a **graceful drain** (:class:`~repro.faults.plan.ReplicaDrain`): a
  replica re-serves and hands its live bindings over before leaving;
* a **partition** (:class:`~repro.faults.plan.PlanePartition`): a replica
  becomes unreachable *without losing state*, so its stale bindings must
  be reconciled at heal time;
* a **crash** (:class:`~repro.faults.plan.HomeAgentRestart`): the PR-4
  state-loss restart, in every cell.

Every cell runs under a :class:`~repro.faults.auditor.PlaneAuditor`
subscribed to the simulator trace; the trial *raises*
:class:`~repro.faults.auditor.AuditViolation` if any consistency
invariant (double ownership, bounded convergence, takeover accounting)
fails — the report's ``audit`` column is a gate, not a vibe.

Cross-validation: the measured mean registration latency sits next to
the M/D/1 prediction from PR 7's aggregate model
(:func:`~repro.workloads.aggregate.predicted_latency_ms`), and the
report footer feeds the measured totals back through
:func:`~repro.workloads.aggregate.calibrated_fleet_timings` — the loop
between event-level truth and the 10^6-host statistical model.

Sharding: fleets split into :data:`SHARD_HOSTS`-host shards, one
:class:`~repro.parallel.Trial` each, seeds ``spawn_seed(base, row,
shard)``; host addresses, RNG streams and retry jitter are keyed by
*global* host index, so ``--jobs N`` reports are byte-identical to
serial at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.config import Config, DEFAULT_CONFIG, LinkTimings
from repro.core.binding_shard import BindingShardPlane, HashRing
from repro.core.home_agent import HomeAgentService
from repro.core.registration import RegistrationClient, RegistrationOutcome
from repro.experiments.harness import (
    LatencyHistogram,
    Stats,
    format_table,
    merge_stats,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    HomeAgentRestart,
    PlaneAuditor,
    PlanePartition,
    ReplicaDrain,
    ReplicaJoin,
)
from repro.net.addressing import (
    IPAddress,
    MACAllocator,
    Subnet,
    ip,
    subnet,
)
from repro.net.host import Host
from repro.net.interface import EthernetInterface, PointToPointInterface
from repro.net.link import EthernetSegment, PointToPointLink
from repro.net.router import Router
from repro.parallel import (
    ParallelRunner,
    Trial,
    balanced_shards,
    run_trials,
    spawn_seed,
)
from repro.sim.engine import Simulator
from repro.sim.units import MBPS, ms, s, us
from repro.stats import Welford
from repro.workloads.aggregate import (
    _SplitMix,
    calibrated_fleet_timings,
    predicted_latency_ms,
)

#: The default grid: fleet size x membership churn x partition.
DEFAULT_FLEET_SIZES = (2_500, 10_000)
#: Mobile hosts per shard simulation (each shard runs its own plane).
SHARD_HOSTS = 1_250
#: Base replicas of each shard's plane, plus one standby for the join.
BASE_AGENTS = ("ha0", "ha1", "ha2", "ha3")
SPARE_AGENT = "ha4"
REPLICATION = 2

#: The home subnet: a /16 so 10^4 global host indices fit one prefix.
HOME_NET = subnet("36.135.0.0/16")
ROUTER_HOME = ip("36.135.0.1")
#: First host index of the mobile block (replica hosts sit below it).
HOME_HOST_BASE = 256
#: Per-host /30 access subnets are carved from this block.
ACCESS_BASE = ip("36.192.0.0")
#: Per-host access link: Ethernet-class so the wire share of the round
#: trip matches the Figure 7 calibration the M/D/1 model predicts.
ACCESS_LINK = LinkTimings(latency=us(150), bandwidth_bps=10 * MBPS)

#: Binding lifetime / renewal cadence for the chaos runs: short enough
#: that every fault is healed by renewals well inside the horizon.
LIFETIME = s(6)
RENEWAL_FRACTION = 0.5
#: Registrations start staggered across the first renewal period ...
REG_START = ms(200)
#: ... and stop issuing here so the tail drains before the run ends.
REG_STOP = s(24)
RUN_FOR = s(28)

#: The fault schedule (same wall positions in every cell).
JOIN_AT = s(6)
PARTITION_AT = s(10)
PARTITION_FOR = s(4)
PARTITIONED = ("ha1",)
DRAIN_AT = s(15)
CRASH_AT = s(17)
CRASH_FOR = s(3)
CRASH_AGENT = "ha2"

#: Data-plane lookup sampling (exercises the bounded-staleness mode).
SAMPLE_START = s(5)
SAMPLE_STOP = s(22)
SAMPLE_INTERVAL = ms(500)
SAMPLE_ADDRESSES = 32


def plane_chaos_config(config: Config = DEFAULT_CONFIG) -> Config:
    """The x8 timing profile layered over *config*.

    Short lifetimes and a tightened retransmit schedule keep recovery
    well inside :attr:`~repro.config.FleetTimings.convergence_deadline`
    (a host that loses a request mid-partition must give up, back off
    and re-resolve before the auditor's deadline expires); the fleet
    knobs enable stale-serve and calibrate the M/D/1 model's arrival
    interval to the actual renewal cadence.
    """
    return config.with_overrides(
        registration=replace(config.registration,
                             default_lifetime=LIFETIME,
                             renewal_fraction=RENEWAL_FRACTION,
                             retransmit_interval=ms(500),
                             max_transmissions=3,
                             backoff_cap=ms(2000),
                             backoff_jitter=0.25),
        fleet=replace(config.fleet,
                      stale_serve=True,
                      mean_registration_interval=int(
                          LIFETIME * RENEWAL_FRACTION),
                      convergence_deadline=s(8)),
        # The router carries one /30 per host: the LPM cache must cover
        # every care-of destination or reply forwarding degrades to a
        # linear scan per packet.
        route_cache_size=4096,
    )


def home_address_of(global_index: int) -> IPAddress:
    """The home address of global host *global_index* (shared scheme)."""
    return HOME_NET.host(HOME_HOST_BASE + global_index)


def access_subnet_of(global_index: int) -> Subnet:
    """The per-host /30 access subnet of global host *global_index*."""
    return Subnet(IPAddress(ACCESS_BASE.value + 4 * global_index), 30)


def build_plan(churn: bool, partition: bool) -> FaultPlan:
    """One cell's deterministic fault schedule."""
    events: list = [HomeAgentRestart(at=CRASH_AT, down_for=CRASH_FOR,
                                     agent=CRASH_AGENT)]
    if churn:
        events.append(ReplicaJoin(at=JOIN_AT, agent=SPARE_AGENT))
        events.append(ReplicaDrain(at=DRAIN_AT, agent="ha0"))
    if partition:
        events.append(PlanePartition(at=PARTITION_AT, duration=PARTITION_FOR,
                                     agents=PARTITIONED))
    return FaultPlan.of(*events)


class _Registrant:
    """One mobile host's registration driver against the plane.

    Follows the plane's directory: every renewal re-resolves
    :meth:`~repro.core.binding_shard.BindingShardPlane.agent_for` and
    addresses that replica explicitly (the ``home_agent=`` override), so
    membership changes migrate bindings through ordinary renewals.  A
    request that exhausts its retransmissions (it was pinned to a
    replica that crashed or partitioned mid-exchange) backs off by a
    per-host jittered delay — drawn from a splitmix64 stream keyed by
    *global* host index, so one replica's failure never synchronizes a
    fleet-wide retry storm and adding a host never shifts another's
    schedule.
    """

    __slots__ = ("sim", "plane", "client", "home", "care_of", "rng",
                 "renewal", "storm_base", "storm_jitter", "last_agent",
                 "stats")

    def __init__(self, sim: Simulator, plane: BindingShardPlane,
                 client: RegistrationClient, home: IPAddress,
                 care_of: IPAddress, global_index: int, jitter_seed: int,
                 stats: Dict[str, object]) -> None:
        self.sim = sim
        self.plane = plane
        self.client = client
        self.home = home
        self.care_of = care_of
        self.rng = _SplitMix(spawn_seed(jitter_seed, global_index))
        config = client.config
        self.renewal = int(config.registration.default_lifetime
                           * config.registration.renewal_fraction)
        self.storm_base = config.fleet.reregister_delay
        self.storm_jitter = config.fleet.reregister_jitter
        self.last_agent: Optional[str] = None
        self.stats = stats

    def start(self) -> None:
        """Schedule the first registration, staggered within one period."""
        delay = REG_START + int(self.renewal * self.rng.random())
        self.sim.call_later(delay, self.attempt, label="x8-first-reg")

    def attempt(self) -> None:
        if self.sim.now >= REG_STOP:
            return
        agent = self.plane.agent_for(self.home)
        if agent is None:  # the whole plane is unreachable: back off
            self._storm_retry()
            return
        self.client.register(self.care_of,
                             on_done=lambda outcome, name=agent.host.name:
                             self._done(outcome, name),
                             on_fail=self._storm_retry,
                             lifetime=LIFETIME,
                             home_agent=agent.address)

    def _done(self, outcome: RegistrationOutcome, agent_name: str) -> None:
        if not outcome.accepted:
            self._storm_retry()
            return
        self.stats["accepted"] += 1  # type: ignore[operator]
        if self.last_agent is not None and agent_name != self.last_agent:
            self.stats["handoffs"] += 1  # type: ignore[operator]
        self.last_agent = agent_name
        latency_ms = outcome.round_trip / 1e6
        self.stats["latency"].add(latency_ms)  # type: ignore[union-attr]
        self.stats["latency_hist"].add(latency_ms)  # type: ignore[union-attr]
        self.sim.call_later(self.renewal, self.attempt, label="x8-renew")

    def _storm_retry(self) -> None:
        if self.sim.now >= REG_STOP:
            return
        self.stats["storm_retries"] += 1  # type: ignore[operator]
        span = self.storm_jitter * (2.0 * self.rng.random() - 1.0)
        delay = max(1, int(self.storm_base * (1.0 + span)))
        self.sim.call_later(delay, self.attempt, label="x8-storm-retry")


def _build_shard(sim: Simulator, config: Config, n_hosts: int,
                 host_offset: int):
    """One shard's topology: router hub, HA plane, per-host access links.

    Every mobile host hangs off its own /30 point-to-point link (a
    shared Ethernet segment delivers each frame to every port — O(N)
    per packet — so a star of cheap p2p links is what keeps 10^3 hosts
    per shard tractable); the replicas and the spare share the home
    Ethernet segment the intercept machinery needs.
    """
    macs = MACAllocator()
    home_segment = EthernetSegment(sim, "net-36.135", config.ethernet)

    router = Router(sim, "router", config)
    r_home = EthernetInterface(sim, "eth0.router", macs.allocate(), config)
    router.add_interface(r_home)
    r_home.attach(home_segment)
    router.configure_interface(r_home, ROUTER_HOME, HOME_NET)

    agents: Dict[str, HomeAgentService] = {}
    for index, name in enumerate((*BASE_AGENTS, SPARE_AGENT)):
        ha_host = Host(sim, name, config, timings=config.server_host)
        ha_iface = EthernetInterface(sim, f"eth0.{name}", macs.allocate(),
                                     config)
        ha_host.add_interface(ha_iface)
        ha_iface.attach(home_segment)
        ha_host.configure_interface(ha_iface, HOME_NET.host(10 + index),
                                    HOME_NET)
        ha_host.add_default_route(ROUTER_HOME, ha_iface)
        agents[name] = HomeAgentService(ha_host, ha_iface)

    plane = BindingShardPlane(
        sim, {name: agents[name] for name in BASE_AGENTS},
        replication=REPLICATION, spares={SPARE_AGENT: agents[SPARE_AGENT]},
        config=config)

    registrants: List[_Registrant] = []
    stats: Dict[str, object] = {
        "accepted": 0, "handoffs": 0, "storm_retries": 0,
        "latency": Welford(), "latency_hist": LatencyHistogram(),
    }
    jitter_seed = sim.rng("x8:storm-jitter").getrandbits(63)
    for local_index in range(n_hosts):
        global_index = host_offset + local_index
        home = home_address_of(global_index)
        access = access_subnet_of(global_index)
        link = PointToPointLink(sim, f"p2p-{global_index}", ACCESS_LINK)

        r_iface = PointToPointInterface(sim, f"p2p{global_index}.router",
                                        config)
        router.add_interface(r_iface)
        r_iface.attach(link)
        router.configure_interface(r_iface, access.host(1), access)

        mobile = Host(sim, f"mh{global_index}", config,
                      timings=config.mobile_host)
        m_iface = PointToPointInterface(sim, f"p2p0.mh{global_index}", config)
        mobile.add_interface(m_iface)
        m_iface.attach(link)
        care_of = access.host(2)
        mobile.configure_interface(m_iface, care_of, access)
        mobile.add_default_route(access.host(1), m_iface)
        plane.serve(home)

        client = RegistrationClient(mobile, home,
                                    home_agent=agents[BASE_AGENTS[0]].address)
        registrants.append(_Registrant(sim, plane, client, home, care_of,
                                       global_index, jitter_seed, stats))
    return plane, registrants, stats


def _sample_lookups(sim: Simulator, plane: BindingShardPlane,
                    host_offset: int, n_hosts: int,
                    tallies: Dict[str, int]) -> None:
    """Periodic data-plane lookups over a fixed slice of addresses.

    This is the consumer of the bounded-staleness mode: while a
    binding's replicas are unreachable the plane may answer from its
    replicated (possibly stale) copy, and the tallies make the degraded
    mode's hit rate a reported number.
    """
    def sample() -> None:
        for index in range(host_offset,
                           host_offset + min(n_hosts, SAMPLE_ADDRESSES)):
            answer = plane.lookup_binding(home_address_of(index))
            if answer is None:
                tallies["lookup_misses"] += 1
            elif answer[1] == "stale":
                tallies["lookup_stale"] += 1
            else:
                tallies["lookup_authoritative"] += 1
        if sim.now + SAMPLE_INTERVAL <= SAMPLE_STOP:
            sim.call_later(SAMPLE_INTERVAL, sample, label="x8-sample")

    sim.call_at(SAMPLE_START, sample, label="x8-sample")


def run_plane_chaos_trial(fleet_size: int, n_hosts: int, host_offset: int,
                          churn: bool, partition: bool, seed: int,
                          config: Config = DEFAULT_CONFIG) -> dict:
    """One shard of one grid cell as a pure trial: (params, seed) -> data.

    Raises :class:`~repro.faults.auditor.AuditViolation` if the plane
    breaks any audited invariant during the run — a chaos cell cannot
    "pass" on throughput while quietly double-owning a home address.
    """
    trial_config = plane_chaos_config(config)
    sim = Simulator(seed=seed)
    plane, registrants, stats = _build_shard(sim, trial_config, n_hosts,
                                             host_offset)

    auditor = PlaneAuditor(plane)
    auditor.attach()

    injector = FaultInjector.for_plane(plane, build_plan(churn, partition))
    injector.arm()

    tallies = {"lookup_authoritative": 0, "lookup_stale": 0,
               "lookup_misses": 0}
    _sample_lookups(sim, plane, host_offset, n_hosts, tallies)

    for registrant in registrants:
        registrant.start()
    sim.run_for(RUN_FOR)

    violations = auditor.finish(raise_on_violation=True)
    attempts = sum(registrant.client.registrations_sent
                   for registrant in registrants)
    latency: Welford = stats["latency"]  # type: ignore[assignment]
    return {
        "fleet_size": fleet_size,
        "n_hosts": n_hosts,
        "churn": churn,
        "partition": partition,
        "attempts": attempts,
        "accepted": stats["accepted"],
        "handoffs": stats["handoffs"],
        "storm_retries": stats["storm_retries"],
        "takeovers": plane.takeovers,
        "stale_served": plane.stale_served,
        "faults_injected": injector.total_injected(),
        "violations": len(violations),
        "latency": latency.finalize().__dict__,
        "latency_hist": stats["latency_hist"].to_counts(),  # type: ignore
        **tallies,
    }


@dataclass
class PlaneChaosPoint:
    """One grid cell, merged across its shards."""

    fleet_size: int
    churn: bool
    partition: bool
    shards: int
    attempts: int
    accepted: int
    handoffs: int
    storm_retries: int
    takeovers: int
    stale_served: int
    faults_injected: int
    violations: int
    latency: Stats
    p99_ms: float
    model_ms: float
    lookup_authoritative: int
    lookup_stale: int
    lookup_misses: int


@dataclass
class PlaneChaosReport:
    points: List[PlaneChaosPoint] = field(default_factory=list)
    calibrated_interval_s: float = 0.0
    calibrated_churn: float = 0.0

    def format_report(self) -> str:
        """Render the audited chaos grid plus the calibration footer."""
        rows = []
        for point in self.points:
            rows.append((f"{point.fleet_size:,}",
                         "on" if point.churn else "off",
                         "on" if point.partition else "off",
                         point.shards,
                         f"{point.accepted:,}",
                         point.takeovers,
                         point.stale_served,
                         point.storm_retries,
                         point.latency.format_ms(),
                         f"{point.p99_ms:.2f}",
                         f"{point.model_ms:.2f}",
                         "ok" if point.violations == 0
                         else f"{point.violations} VIOLATIONS"))
        table = format_table(
            ("fleet hosts", "churn", "partition", "shards", "registrations",
             "takeovers", "stale served", "storms",
             "reg latency ms: mean (std)", "p99 ms", "model ms", "audit"),
            rows)
        footer = (f"calibrated aggregate fleet (from the fullest cell): "
                  f"mean registration interval "
                  f"{self.calibrated_interval_s:.2f} s, "
                  f"churn p={self.calibrated_churn:.3f}")
        return ("Plane chaos: membership churn, partitions and crashes "
                "under live registration load (audited)\n" + table + "\n"
                + footer)


def _grid(fleet_sizes: Sequence[int]) -> List[tuple]:
    """(fleet, churn, partition) cells in report order."""
    return [(fleet_size, churn, partition)
            for fleet_size in fleet_sizes
            for churn in (False, True)
            for partition in (False, True)]


def build_plane_chaos_trials(fleet_sizes: Sequence[int], seed: int,
                             config: Config,
                             shard_hosts: int = SHARD_HOSTS) -> List[Trial]:
    """Every cell's balanced shard trials, seeds by (row, shard)."""
    trials: List[Trial] = []
    for row_index, (fleet_size, churn, partition) in enumerate(
            _grid(fleet_sizes)):
        offset = 0
        for shard_index, shard_size in enumerate(
                balanced_shards(fleet_size, shard_hosts)):
            trials.append(Trial(
                "repro.experiments.exp_plane_chaos:run_plane_chaos_trial",
                dict(fleet_size=fleet_size, n_hosts=shard_size,
                     host_offset=offset, churn=churn, partition=partition,
                     seed=spawn_seed(seed, row_index, shard_index),
                     config=config)))
            offset += shard_size
    return trials


def merge_plane_chaos_trials(results: List[dict],
                             fleet_sizes: Sequence[int],
                             config: Config = DEFAULT_CONFIG,
                             shard_hosts: int = SHARD_HOSTS
                             ) -> PlaneChaosReport:
    """Fold ordered shard results into grid cells, losslessly."""
    trial_config = plane_chaos_config(config)
    report = PlaneChaosReport()
    cursor = iter(results)
    for fleet_size, churn, partition in _grid(fleet_sizes):
        shard_sizes = balanced_shards(fleet_size, shard_hosts)
        shard_results = [next(cursor) for _ in shard_sizes]
        histogram = LatencyHistogram()
        for result in shard_results:
            histogram.merge(LatencyHistogram.from_counts(
                result["latency_hist"]))
        # Each shard runs its own plane, so the M/D/1 prediction is per
        # plane: the shard's host count against the base replica ring.
        ring = HashRing(BASE_AGENTS)
        report.points.append(PlaneChaosPoint(
            fleet_size=fleet_size,
            churn=churn,
            partition=partition,
            shards=len(shard_sizes),
            attempts=sum(r["attempts"] for r in shard_results),
            accepted=sum(r["accepted"] for r in shard_results),
            handoffs=sum(r["handoffs"] for r in shard_results),
            storm_retries=sum(r["storm_retries"] for r in shard_results),
            takeovers=sum(r["takeovers"] for r in shard_results),
            stale_served=sum(r["stale_served"] for r in shard_results),
            faults_injected=sum(r["faults_injected"]
                                for r in shard_results),
            violations=sum(r["violations"] for r in shard_results),
            latency=merge_stats([Stats(**r["latency"])
                                 for r in shard_results]),
            p99_ms=histogram.quantile(0.99),
            model_ms=predicted_latency_ms(trial_config, shard_sizes[0],
                                          ring=ring),
            lookup_authoritative=sum(r["lookup_authoritative"]
                                     for r in shard_results),
            lookup_stale=sum(r["lookup_stale"] for r in shard_results),
            lookup_misses=sum(r["lookup_misses"] for r in shard_results),
        ))
    # Close the loop to the aggregate model: fit its arrival/churn knobs
    # to the fullest cell's measured traffic.
    fullest = report.points[-1]
    fitted = calibrated_fleet_timings(trial_config.fleet,
                                      registrations=fullest.accepted,
                                      handoffs=fullest.handoffs,
                                      hosts=fullest.fleet_size,
                                      horizon_ns=REG_STOP)
    report.calibrated_interval_s = fitted.mean_registration_interval / 1e9
    report.calibrated_churn = fitted.churn_probability
    return report


def run_plane_chaos_experiment(fleet_sizes: Sequence[int] =
                               DEFAULT_FLEET_SIZES,
                               seed: int = 71,
                               config: Config = DEFAULT_CONFIG,
                               shard_hosts: int = SHARD_HOSTS,
                               jobs: int = 1,
                               runner: Optional[ParallelRunner] = None
                               ) -> PlaneChaosReport:
    """The audited chaos grid; ``jobs=N`` shards cells across workers."""
    trials = build_plane_chaos_trials(fleet_sizes, seed, config, shard_hosts)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_plane_chaos_trials(results, fleet_sizes, config, shard_hosts)


if __name__ == "__main__":  # pragma: no cover
    print(run_plane_chaos_experiment().format_report())
