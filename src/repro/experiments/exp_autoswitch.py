"""Extension ablation: how fast should the mobile host probe?

Section 6 promises to "experiment with techniques for determining when to
switch between networks".  The central design choice in our
:class:`~repro.core.autoswitch.ConnectivityManager` is the probe cadence:
faster probing detects a dead network sooner (shorter outage) but costs
more background traffic.  This ablation sweeps the probe interval and
measures, for an Ethernet-cable-pull with a hot radio standing by:

* packets lost before the automatic failover completes,
* detection + switch time,
* probe overhead (probes per second of simulated time).

The hysteresis depth is part of the product ``interval x down_threshold``,
so the sweep exposes the real trade-off curve the paper wanted to study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.experiments.harness import format_table
from repro.parallel import ParallelRunner, Trial, run_trials
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

DEFAULT_INTERVALS_MS = (150, 300, 600, 1200)
PROBE_STREAM_INTERVAL = ms(100)


@dataclass
class SweepPoint:
    probe_interval_ms: float
    packets_lost: int
    failover_ms: float
    probes_per_second: float


@dataclass
class AutoswitchReport:
    points: List[SweepPoint] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the sweep as a plain-text table."""
        rows = [(f"{point.probe_interval_ms:g}",
                 point.packets_lost,
                 f"{point.failover_ms:.0f}",
                 f"{point.probes_per_second:.1f}")
                for point in self.points]
        table = format_table(("probe interval ms", "packets lost",
                              "failover ms", "probes/s"), rows)
        return ("Auto-switch ablation: probe cadence vs failover outage "
                "(Section 6 extension)\n" + table)


def _run_point(interval: int, seed: int, config: Config) -> SweepPoint:
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    sim.run_for(s(1))

    manager = ConnectivityManager(testbed.mobile, probe_interval=interval,
                                  probe_timeout=ms(600))
    manager.add_option(AttachmentOption(
        name="ethernet", interface=testbed.mh_eth,
        care_of=addresses.mh_dept_care_of, subnet=addresses.dept_net,
        gateway=addresses.router_dept))
    manager.add_option(AttachmentOption(
        name="radio", interface=testbed.mh_radio,
        care_of=addresses.mh_radio, subnet=addresses.radio_net,
        gateway=addresses.router_radio, score=1.0))
    failovers: List[int] = []
    manager.on_switch = lambda timeline: failovers.append(sim.now)
    manager.start()

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=PROBE_STREAM_INTERVAL)
    stream.start()
    sim.run_for(s(4))

    cable_pulled_at = sim.now
    testbed.mh_eth.detach()
    sim.run_for(s(12))
    stream.stop()
    sim.run_for(s(3))

    assert failovers, "manager never failed over"
    failover_ms = (failovers[0] - cable_pulled_at) / 1e6
    total_probes = sum(option.probes_sent for option in manager.options)
    probes_per_second = total_probes / ((sim.now - s(1)) / 1e9)
    return SweepPoint(probe_interval_ms=interval / 1e6,
                      packets_lost=stream.lost_count(),
                      failover_ms=failover_ms,
                      probes_per_second=probes_per_second)


def run_autoswitch_trial(interval_ns: int, seed: int,
                         config: Config = DEFAULT_CONFIG) -> dict:
    """One probe-cadence sweep point as a pure trial."""
    point = _run_point(interval_ns, seed, config)
    return {"probe_interval_ms": point.probe_interval_ms,
            "packets_lost": point.packets_lost,
            "failover_ms": point.failover_ms,
            "probes_per_second": point.probes_per_second}


def build_autoswitch_trials(intervals_ms, seed: int,
                            config: Config) -> List[Trial]:
    """One trial per sweep point, seed = base + index."""
    return [Trial("repro.experiments.exp_autoswitch:run_autoswitch_trial",
                  dict(interval_ns=ms(interval_ms), seed=seed + index,
                       config=config))
            for index, interval_ms in enumerate(intervals_ms)]


def merge_autoswitch_trials(results: List[dict]) -> AutoswitchReport:
    """Reassemble ordered sweep points into the report."""
    report = AutoswitchReport()
    for result in results:
        report.points.append(SweepPoint(**result))
    return report


def run_autoswitch_experiment(intervals_ms=DEFAULT_INTERVALS_MS,
                              seed: int = 71,
                              config: Config = DEFAULT_CONFIG,
                              jobs: int = 1,
                              runner: Optional[ParallelRunner] = None
                              ) -> AutoswitchReport:
    """Sweep the probe cadence; each point is an independent trial."""
    trials = build_autoswitch_trials(intervals_ms, seed, config)
    results = run_trials(trials, jobs=jobs, runner=runner)
    return merge_autoswitch_trials(results)


if __name__ == "__main__":  # pragma: no cover
    print(run_autoswitch_experiment().format_report())
