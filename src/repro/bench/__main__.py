"""Benchmark CLI.

Usage::

    python -m repro.bench              # full run, writes BENCH_*.json here
    python -m repro.bench --quick      # smaller workloads (CI-friendly)
    python -m repro.bench --out DIR    # write the JSON files elsewhere
    python -m repro.bench --jobs 4     # worker count for the parallel bench

Runs the engine benchmark, the datapath benchmarks, the same-seed
determinism guard, the TCP congestion-control comparison, and the
serial-vs-parallel experiment-suite bench, then writes
``BENCH_engine.json``, ``BENCH_datapath.json``, ``BENCH_tcp.json`` and
``BENCH_parallel.json``.  The exit status reflects *correctness only*:
0 unless a determinism check fails (the guard, or serial/parallel report
divergence).  Speed numbers are reported, never gated on — wall time
belongs to the machine, identity belongs to us.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.datapath_bench import run_datapath_bench
from repro.bench.engine_bench import run_engine_bench
from repro.bench.guard import run_determinism_guard
from repro.bench.parallel_bench import run_parallel_bench
from repro.bench.tcp_bench import run_tcp_bench


def _write(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (for CI smoke runs)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel bench "
                             "(0 = one per CPU; default 4)")
    args = parser.parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)

    print("== engine benchmark ==")
    engine = run_engine_bench(quick=args.quick)
    speedups = engine["speedup_vs_baseline"]
    print(f"baseline replica : {engine['baseline']['ns_per_event']:8.1f} ns/event")
    print(f"heap scheduler   : {engine['heap']['ns_per_event']:8.1f} ns/event "
          f"({speedups['heap']:.2f}x)")
    print(f"timer wheel      : {engine['wheel']['ns_per_event']:8.1f} ns/event "
          f"({speedups['wheel']:.2f}x)")

    print("== datapath benchmarks ==")
    datapath = run_datapath_bench(quick=args.quick)
    packets = datapath["packet_construction"]
    print(f"packet build     : {packets['current_ns_per_packet']:8.1f} ns/packet "
          f"({packets['speedup']:.2f}x vs dataclasses)")
    policy = datapath["policy_lookup"]
    print(f"policy lookup    : {policy['cached_ns_per_lookup']:8.1f} ns cached "
          f"({policy['speedup']:.2f}x, hit rate {policy['cache_hit_rate']:.3f})")
    routing = datapath["routing_lookup"]
    print(f"route lookup     : {routing['cached_ns_per_lookup']:8.1f} ns cached "
          f"({routing['speedup']:.2f}x, hit rate {routing['cache_hit_rate']:.3f})")
    scenario = datapath["scenario_regeneration"]
    print(f"scenario regen   : {scenario['events_per_sec']:,.0f} events/sec")

    print("== determinism guard ==")
    guard = run_determinism_guard()
    for run in guard["runs"]:
        status = "ok" if run["matches_reference"] else "MISMATCH"
        print(f"{run['config']:<20} {run['events_run']:>7} events  {status}")
    datapath["determinism_guard"] = guard

    print("== tcp congestion control ==")
    tcp = run_tcp_bench(quick=args.quick)
    for cc, cell in tcp["cells"].items():
        status = "ok" if cell["rerun_identical"] else "MISMATCH"
        print(f"{cc:<8} goodput {cell['goodput_kbps']:6.1f} kbit/s  "
              f"retrans {cell['retransmits']:>3}  "
              f"{cell['wall_s']:6.2f}s  {status}")

    print("== parallel experiment runner ==")
    parallel = run_parallel_bench(jobs=args.jobs, quick=args.quick)
    for name, entry in parallel["experiments"].items():
        status = "ok" if entry["identical"] else "MISMATCH"
        print(f"{name:<16} serial {entry['serial_s']:6.2f}s  "
              f"jobs={parallel['jobs']} {entry['parallel_s']:6.2f}s  "
              f"({entry['speedup']:.2f}x)  {status}")
    total = parallel["total"]
    print(f"{'TOTAL':<16} serial {total['serial_s']:6.2f}s  "
          f"jobs={parallel['jobs']} {total['parallel_s']:6.2f}s  "
          f"({total['speedup']:.2f}x on {parallel['cpu_count']} CPUs)")

    _write(args.out / "BENCH_engine.json", engine)
    _write(args.out / "BENCH_datapath.json", datapath)
    _write(args.out / "BENCH_tcp.json", tcp)
    _write(args.out / "BENCH_parallel.json", parallel)

    failed = False
    if not guard["passed"]:
        print("determinism guard FAILED: fast path changed simulation results",
              file=sys.stderr)
        failed = True
    else:
        print("determinism guard passed: snapshots byte-identical "
              "across configs")
    if not tcp["deterministic"]:
        print("tcp bench FAILED: a congestion-control strategy is "
              "nondeterministic", file=sys.stderr)
        failed = True
    else:
        print("tcp bench passed: same-seed reruns identical for "
              + ", ".join(tcp["cells"]))
    if not parallel["identical"]:
        print("parallel determinism FAILED: --jobs changed experiment "
              "reports", file=sys.stderr)
        failed = True
    else:
        print(f"parallel determinism passed: jobs={parallel['jobs']} "
              f"reports identical to serial")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
