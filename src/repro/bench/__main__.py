"""Benchmark CLI.

Usage::

    python -m repro.bench              # full run, writes BENCH_*.json here
    python -m repro.bench --quick      # smaller workloads (CI-friendly)
    python -m repro.bench --out DIR    # write the JSON files elsewhere
    python -m repro.bench --jobs 4     # worker count for the parallel bench

Runs the engine benchmark, the datapath benchmarks, the same-seed
determinism guard, the TCP congestion-control comparison (plus its
flow-controlled windowed-transfer stage), the
serial-vs-parallel experiment-suite bench, and the aggregate fleet-scale
bench, then writes ``BENCH_engine.json``, ``BENCH_datapath.json``,
``BENCH_tcp.json``, ``BENCH_parallel.json`` and ``BENCH_fleet.json``.
The exit status reflects correctness plus two floors: it is non-zero if
a determinism check fails (the guard, TCP reruns, the windowed-transfer
gate, serial/parallel report divergence, or fleet rerun divergence), if the engine speedup vs the
in-process baseline replica falls below ``--min-speedup`` (default 2.5x;
0 disables), if fleet registration throughput falls below its
registrations/sec floor, or if a BENCH file cannot be written.  Absolute
wall times stay advisory — they belong to the machine; the ratios,
floors and identity belong to us.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.datapath_bench import run_datapath_bench
from repro.bench.engine_bench import run_engine_bench
from repro.bench.fleet_bench import run_fleet_bench
from repro.bench.guard import run_determinism_guard
from repro.bench.parallel_bench import run_parallel_bench
from repro.bench.tcp_bench import run_tcp_bench


def _write(path: Path, doc: dict) -> None:
    """Write one BENCH document; a failed write is a failed run.

    CI diffs these files against the committed ones, so silently carrying
    on after an unwritable --out directory would upload stale results.
    """
    try:
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        print(f"error: failed to write benchmark output {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(1)
    print(f"wrote {path}")


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (for CI smoke runs)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel bench "
                             "(0 = one per CPU; default 4)")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        metavar="X",
                        help="fail unless the best engine speedup vs the "
                             "baseline replica is at least X (0 disables; "
                             "default 2.5)")
    args = parser.parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)

    print("== engine benchmark ==")
    engine = run_engine_bench(quick=args.quick)
    speedups = engine["speedup_vs_baseline"]
    print(f"baseline replica : {engine['baseline']['ns_per_event']:8.1f} ns/event")
    print(f"heap (pooled)    : {engine['heap']['ns_per_event']:8.1f} ns/event "
          f"({speedups['heap']:.2f}x)")
    print(f"heap (unpooled)  : {engine['heap_unpooled']['ns_per_event']:8.1f} ns/event "
          f"({speedups['heap_unpooled']:.2f}x)")
    print(f"timer wheel      : {engine['wheel']['ns_per_event']:8.1f} ns/event "
          f"({speedups['wheel']:.2f}x)")

    print("== datapath benchmarks ==")
    datapath = run_datapath_bench(quick=args.quick)
    packets = datapath["packet_construction"]
    print(f"packet build     : {packets['current_ns_per_packet']:8.1f} ns/packet "
          f"({packets['speedup']:.2f}x vs dataclasses, "
          f"{packets['pooled_speedup']:.2f}x pooled)")
    policy = datapath["policy_lookup"]
    print(f"policy lookup    : {policy['cached_ns_per_lookup']:8.1f} ns cached "
          f"({policy['speedup']:.2f}x, hit rate {policy['cache_hit_rate']:.3f})")
    routing = datapath["routing_lookup"]
    print(f"route lookup     : {routing['cached_ns_per_lookup']:8.1f} ns cached "
          f"({routing['speedup']:.2f}x, hit rate {routing['cache_hit_rate']:.3f})")
    scenario = datapath["scenario_regeneration"]
    print(f"scenario regen   : {scenario['events_per_sec']:,.0f} events/sec")

    print("== determinism guard ==")
    guard = run_determinism_guard()
    for run in guard["runs"]:
        status = "ok" if run["matches_reference"] else "MISMATCH"
        print(f"{run['config']:<20} {run['events_run']:>7} events  {status}")
    datapath["determinism_guard"] = guard

    print("== tcp congestion control ==")
    tcp = run_tcp_bench(quick=args.quick)
    for cc, cell in tcp["cells"].items():
        status = "ok" if cell["rerun_identical"] else "MISMATCH"
        print(f"{cc:<8} goodput {cell['goodput_kbps']:6.1f} kbit/s  "
              f"retrans {cell['retransmits']:>3}  "
              f"{cell['wall_s']:6.2f}s  {status}")
    windowed = tcp["windowed"]
    cell = windowed["cell"]
    status = "ok" if windowed["passed"] else "MISMATCH"
    print(f"windowed goodput {cell['goodput_kbps']:6.1f} kbit/s  "
          f"stall {cell['zero_window_ms']:6.0f} ms  "
          f"probes {cell['persist_probes']:>2}  "
          f"{cell['wall_s']:6.2f}s  {status}")

    print("== parallel experiment runner ==")
    parallel = run_parallel_bench(jobs=args.jobs, quick=args.quick)
    for name, entry in parallel["experiments"].items():
        status = "ok" if entry["identical"] else "MISMATCH"
        print(f"{name:<16} serial {entry['serial_s']:6.2f}s  "
              f"jobs={parallel['jobs']} {entry['parallel_s']:6.2f}s  "
              f"({entry['speedup']:.2f}x)  {status}")
    total = parallel["total"]
    print(f"{'TOTAL':<16} serial {total['serial_s']:6.2f}s  "
          f"jobs={parallel['jobs']} {total['parallel_s']:6.2f}s  "
          f"({total['speedup']:.2f}x on {parallel['cpu_count']} CPUs)")

    print("== fleet scale (aggregate hosts) ==")
    fleet = run_fleet_bench(quick=args.quick)
    fleet_status = "ok" if fleet["rerun_identical"] else "MISMATCH"
    print(f"{fleet['fleet_hosts']:,} hosts  "
          f"{fleet['registrations']:,} registrations  "
          f"{fleet['wall_s']:6.2f}s  "
          f"({fleet['regs_per_sec']:,.0f} regs/sec)  {fleet_status}")
    churn = fleet["audited_churn"]
    churn_status = ("ok" if churn["rerun_identical"]
                    and churn["violations"] == 0 else "MISMATCH")
    print(f"audited churn: {churn['hosts']:,} hosts  "
          f"{churn['registrations']:,} registrations  "
          f"{churn['takeovers']} takeovers  "
          f"{churn['wall_s']:6.2f}s  "
          f"({churn['regs_per_sec']:,.0f} regs/sec)  {churn_status}")

    _write(args.out / "BENCH_engine.json", engine)
    _write(args.out / "BENCH_datapath.json", datapath)
    _write(args.out / "BENCH_tcp.json", tcp)
    _write(args.out / "BENCH_parallel.json", parallel)
    _write(args.out / "BENCH_fleet.json", fleet)

    failed = False
    if args.min_speedup > 0 and speedups["best"] < args.min_speedup:
        print(f"engine speedup FAILED: best {speedups['best']:.2f}x is below "
              f"the {args.min_speedup:.2f}x floor", file=sys.stderr)
        failed = True
    else:
        print(f"engine speedup: best {speedups['best']:.2f}x vs baseline "
              f"replica (floor {args.min_speedup:.2f}x)")
    if not guard["passed"]:
        print("determinism guard FAILED: fast path changed simulation results",
              file=sys.stderr)
        failed = True
    else:
        print("determinism guard passed: snapshots byte-identical "
              "across configs")
    if not tcp["deterministic"]:
        print("tcp bench FAILED: a congestion-control strategy is "
              "nondeterministic", file=sys.stderr)
        failed = True
    else:
        print("tcp bench passed: same-seed reruns identical for "
              + ", ".join(tcp["cells"]))
    if not tcp["windowed"]["passed"]:
        print("windowed transfer FAILED: rerun diverged, no data moved, "
              "no zero-window stall, or (full mode) no persist probes",
              file=sys.stderr)
        failed = True
    else:
        print("windowed transfer passed: rerun identical, "
              f"{tcp['windowed']['cell']['zero_window_ms']:.0f} ms stalled, "
              f"{tcp['windowed']['cell']['persist_probes']} probes")
    if not parallel["identical"]:
        print("parallel determinism FAILED: --jobs changed experiment "
              "reports", file=sys.stderr)
        failed = True
    else:
        print(f"parallel determinism passed: jobs={parallel['jobs']} "
              f"reports identical to serial")
    if not fleet["meets_floor"]:
        print(f"fleet bench FAILED: {fleet['regs_per_sec']:,.0f} regs/sec is "
              f"below the {fleet['min_regs_per_sec']:,.0f} floor",
              file=sys.stderr)
        failed = True
    elif not fleet["rerun_identical"]:
        print("fleet bench FAILED: same-seed rerun produced a different "
              "report", file=sys.stderr)
        failed = True
    else:
        print(f"fleet bench passed: {fleet['regs_per_sec']:,.0f} regs/sec "
              f"(floor {fleet['min_regs_per_sec']:,.0f}), rerun identical")
    churn = fleet["audited_churn"]
    if churn["violations"] != 0:
        print(f"audited churn FAILED: {churn['violations']} plane "
              "invariant violation(s)", file=sys.stderr)
        failed = True
    elif not churn["meets_floor"]:
        print(f"audited churn FAILED: {churn['regs_per_sec']:,.0f} regs/sec "
              f"is below the {churn['min_regs_per_sec']:,.0f} floor",
              file=sys.stderr)
        failed = True
    elif not churn["rerun_identical"]:
        print("audited churn FAILED: same-seed rerun produced a different "
              "result", file=sys.stderr)
        failed = True
    else:
        print(f"audited churn passed: zero violations, "
              f"{churn['regs_per_sec']:,.0f} regs/sec "
              f"(floor {churn['min_regs_per_sec']:,.0f}), rerun identical")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
