"""Reproducible benchmark baseline for the engine and datapath fast path.

``python -m repro.bench`` runs three benchmark suites and a determinism
guard, then writes ``BENCH_engine.json``, ``BENCH_datapath.json`` and
``BENCH_parallel.json``:

* **Engine** (:mod:`repro.bench.engine_bench`) — a deterministic
  timer-chain workload dispatched through (a) a faithful replica of the
  pre-fast-path engine (dataclass events, per-event heap pops, no label
  interning; :mod:`repro.bench.baseline`), (b) the current engine with the
  heap scheduler, and (c) the current engine with the timer wheel.  The
  JSON reports events/sec, ns/event, and the speedup of the current engine
  over the baseline replica *measured in the same process on the same
  machine*, which is what makes the number honest.
* **Datapath** (:mod:`repro.bench.datapath_bench`) — packet-construction
  cost (slotted classes vs the old frozen dataclasses), policy/routing
  lookup cost with the result caches on vs off (including hit rates), the
  cost of a disabled trace category, and a whole-testbed scenario
  regeneration timed end to end.
* **Parallel** (:mod:`repro.bench.parallel_bench`) — the trial-heavy
  experiments run serially and through the ``repro.parallel`` worker
  pool (``--jobs N``), writing ``BENCH_parallel.json`` with wall-clock,
  speedup, ``cpu_count``, and a determinism verdict (plain-data reports
  must compare equal).  A report mismatch fails the run like a guard
  failure; speedup never does.
* **Fleet** (:mod:`repro.bench.fleet_bench`) — the x7 aggregate-model
  fleet row at 10^5 hosts, writing ``BENCH_fleet.json`` with wall-clock
  and registrations processed per second.  Throughput below the
  registrations/sec floor or a rerun mismatch fails the run: the floor
  is the tripwire against reintroducing per-host simulation on the
  fleet path.
* **Guard** (:mod:`repro.bench.guard`) — re-runs the same seeded scenario
  with the fast path on and off (caches disabled, verbose tracing forced,
  wheel vs heap scheduler) and asserts the metric snapshots are
  byte-identical after stripping the documented cache-diagnostic counters.
  This is the CI tripwire: an optimisation that changes results fails the
  build; one that merely changes speed cannot.

Benchmarks measure wall time, so their numbers vary run to run; the
*workloads* are seeded and fixed, so the counted quantities (events run,
packets built, cache hits) are exactly reproducible.
"""

from repro.bench.datapath_bench import run_datapath_bench
from repro.bench.engine_bench import run_engine_bench
from repro.bench.fleet_bench import run_fleet_bench
from repro.bench.guard import run_determinism_guard, strip_cache_metrics
from repro.bench.parallel_bench import run_parallel_bench

__all__ = [
    "run_engine_bench",
    "run_datapath_bench",
    "run_determinism_guard",
    "run_parallel_bench",
    "run_fleet_bench",
    "strip_cache_metrics",
]
