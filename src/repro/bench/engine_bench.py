"""Engine microbenchmark: baseline replica vs heap vs timer wheel.

The workload is a fixed, fully deterministic mesh of timer chains chosen to
look like the simulator's real life: mostly short relative timers (link
and per-packet costs), periodic same-timestamp bursts (a batch of FIFO
deliveries landing together), and a steady trickle of cancellations
(retransmit timers that get acked).  No RNG, no trace, no packet objects —
this isolates the scheduling/dispatch machinery.
"""

from __future__ import annotations

import time as _wallclock
from typing import Dict

from repro.bench.baseline import BaselineSimulator
from repro.sim.engine import Simulator

#: Timer chains started at slightly staggered times.
CHAINS = 32
#: Every burst interval, this many events land on one timestamp.
BURST = 8


def _noop() -> None:
    return None


def _run_workload(sim, n_events: int) -> Dict[str, object]:
    """Drive *sim* through the standard workload; returns measurements.

    *sim* needs the engine API subset: ``call_at``/``call_later`` (whose
    return value has ``cancel()``), ``run()``, ``events_run``.  Engines
    offering the fire-and-forget ``post_at``/``post_later`` (which the
    real datapath now uses) get them; the baseline replica falls back to
    ``call_at``/``call_later``, so every contender dispatches the exact
    same logical event sequence.
    """
    post_later = getattr(sim, "post_later", None) or sim.call_later
    post_at = getattr(sim, "post_at", None) or sim.call_at
    state = {"count": 0}

    def tick() -> None:
        count = state["count"] = state["count"] + 1
        if count >= n_events:
            return
        post_later(1_000 + (count % 7) * 37, tick, "bench-tick")
        if count % 50 == 0:
            # A timer that never fires: armed, then immediately cancelled
            # (the fate of most retransmission timers).  Cancellation needs
            # a handle, so this stays on call_later for every engine.
            sim.call_later(500_000, _noop, "bench-cancelled").cancel()
        if count % 97 == 0:
            # A burst: BURST events sharing one future timestamp.
            when = sim.now + 4_096
            for _ in range(BURST):
                post_at(when, _noop, "bench-burst")

    for chain in range(CHAINS):
        post_later(chain * 11, tick, "bench-tick")

    wall_start = _wallclock.perf_counter_ns()
    sim.run()
    wall_ns = _wallclock.perf_counter_ns() - wall_start

    events = sim.events_run
    return {
        "events_run": events,
        "wall_ns": wall_ns,
        "ns_per_event": wall_ns / events,
        "events_per_sec": events * 1e9 / wall_ns,
    }


def run_engine_bench(quick: bool = False) -> Dict[str, object]:
    """Run the workload on all three engines; returns the BENCH_engine doc.

    The baseline replica runs in the same process moments before the
    current engine, so the reported ``speedup_vs_baseline`` compares like
    with like (same machine, same load, same interpreter state).
    """
    n_events = 40_000 if quick else 200_000

    # Warm-up: populate type caches, counter dicts and event pools outside
    # the timed region, identically for every contender.
    _run_workload(BaselineSimulator(), 2_000)
    _run_workload(Simulator(scheduler="heap"), 2_000)
    _run_workload(Simulator(scheduler="heap", pooling=False), 2_000)
    _run_workload(Simulator(scheduler="wheel"), 2_000)

    baseline = _run_workload(BaselineSimulator(), n_events)
    heap = _run_workload(Simulator(scheduler="heap"), n_events)
    heap_unpooled = _run_workload(
        Simulator(scheduler="heap", pooling=False), n_events)
    wheel = _run_workload(Simulator(scheduler="wheel"), n_events)

    for name, contender in (("heap", heap), ("heap_unpooled", heap_unpooled),
                            ("wheel", wheel)):
        if contender["events_run"] != baseline["events_run"]:
            raise AssertionError(
                "engine benchmark dispatched different event counts: "
                f"baseline={baseline['events_run']} "
                f"{name}={contender['events_run']}")

    best = min(heap["ns_per_event"], wheel["ns_per_event"])
    return {
        "bench": "engine",
        "workload": {
            "n_events": n_events,
            "chains": CHAINS,
            "burst": BURST,
            "quick": quick,
        },
        "baseline": baseline,
        "heap": heap,
        "heap_unpooled": heap_unpooled,
        "wheel": wheel,
        "speedup_vs_baseline": {
            "heap": baseline["ns_per_event"] / heap["ns_per_event"],
            "heap_unpooled":
                baseline["ns_per_event"] / heap_unpooled["ns_per_event"],
            "wheel": baseline["ns_per_event"] / wheel["ns_per_event"],
            "best": baseline["ns_per_event"] / best,
        },
    }
