"""Serial-vs-parallel wall-clock for the experiment suite.

``python -m repro.bench --jobs N`` runs the trial-heavy experiments twice
— once in-process (``jobs=1``) and once through the worker pool — and
writes ``BENCH_parallel.json`` recording wall-clock, speedup, and a
determinism verdict: the two runs' reports, reduced to plain data, must
compare equal.  Like every bench in this package, **only the determinism
check can fail the run**; speedup is a number for humans, machine- and
core-count-dependent (``cpu_count`` is recorded next to it so a 1-core
CI box reporting ~1x reads as what it is).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    run_device_switch_experiment,
    run_fa_ablation,
    run_ha_fleet_sweep,
    run_same_subnet_experiment,
)
from repro.experiments.harness import as_plain_data
from repro.parallel.runner import effective_jobs

#: The trial-heavy scenarios: (id, trial count note, factory(quick) ->
#: callable(jobs) -> report).  Trial counts are what makes sharding pay:
#: each scenario fans out dozens of independent simulations.
_Scenario = Tuple[str, Callable]


def _scenarios(quick: bool) -> List[_Scenario]:
    if quick:
        return [
            ("same_subnet",
             lambda jobs: run_same_subnet_experiment(iterations=8, seed=11,
                                                     jobs=jobs)),
            ("device_switch",
             lambda jobs: run_device_switch_experiment(iterations=3, seed=23,
                                                       jobs=jobs)),
            ("fa_ablation",
             lambda jobs: run_fa_ablation(iterations=4, seed=47, jobs=jobs)),
            ("ha_fleet_sweep",
             lambda jobs: run_ha_fleet_sweep(fleet_sizes=(100, 200), seed=97,
                                             jobs=jobs)),
        ]
    return [
        ("same_subnet",
         lambda jobs: run_same_subnet_experiment(jobs=jobs)),
        ("device_switch",
         lambda jobs: run_device_switch_experiment(jobs=jobs)),
        ("fa_ablation",
         lambda jobs: run_fa_ablation(jobs=jobs)),
        ("ha_fleet_sweep",
         lambda jobs: run_ha_fleet_sweep(jobs=jobs)),
    ]


def _timed(factory: Callable, jobs: int):
    start = time.perf_counter()
    report = factory(jobs)
    return time.perf_counter() - start, as_plain_data(report)


def run_parallel_bench(jobs: int = 4, quick: bool = False) -> Dict:
    """Time the suite serial vs *jobs* workers; verify identical reports."""
    jobs = effective_jobs(jobs)
    experiments: Dict[str, Dict] = {}
    serial_total = 0.0
    parallel_total = 0.0
    all_identical = True
    for name, factory in _scenarios(quick):
        serial_s, serial_report = _timed(factory, 1)
        parallel_s, parallel_report = _timed(factory, jobs)
        identical = serial_report == parallel_report
        all_identical = all_identical and identical
        serial_total += serial_s
        parallel_total += parallel_s
        experiments[name] = {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 0.0,
            "identical": identical,
        }
    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "experiments": experiments,
        "total": {
            "serial_s": serial_total,
            "parallel_s": parallel_total,
            "speedup": (serial_total / parallel_total
                        if parallel_total else 0.0),
        },
        "identical": all_identical,
    }
