"""TCP congestion-control benchmark: Tahoe vs Reno vs CUBIC.

Runs one x6 sweep cell per strategy — the hard one: Gilbert-Elliott
bursty loss plus a mid-stream Ethernet-to-radio handoff — and reports
application goodput, retransmission work, and wall time side by side.
Each cell is then re-run with the same seed and compared field-by-field:
any divergence means a strategy consumed nondeterministic state (the
repository's cardinal sin), and the benchmark reports
``deterministic: false`` so the CLI can fail the run.

Speed numbers are informational; determinism is the contract.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.experiments.exp_tcp_cc import run_tcp_cc_trial

#: The strategies under comparison, in report order.
STRATEGIES = ("tahoe", "reno", "cubic")
#: The seed matches x6's default base so numbers line up with the report.
SEED = 113


def run_tcp_bench(quick: bool = False) -> dict:
    """Benchmark every strategy on the lossy-handoff cell; verify determinism.

    ``quick`` drops the loss phase and the handoff (CI smoke runs), which
    shortens the simulated recovery tail without changing the shape of
    the output document.
    """
    loss_rate = 0.0 if quick else 0.25
    handoff = not quick
    cells: Dict[str, dict] = {}
    deterministic = True
    for cc in STRATEGIES:
        started = time.perf_counter()
        outcome = run_tcp_cc_trial(cc, loss_rate=loss_rate, handoff=handoff,
                                   seed=SEED)
        wall_s = time.perf_counter() - started
        rerun = run_tcp_cc_trial(cc, loss_rate=loss_rate, handoff=handoff,
                                 seed=SEED)
        identical = outcome == rerun
        deterministic = deterministic and identical
        cells[cc] = dict(outcome, wall_s=round(wall_s, 4),
                         rerun_identical=identical)
    return {
        "quick": quick,
        "loss_rate": loss_rate,
        "handoff": handoff,
        "seed": SEED,
        "cells": cells,
        "goodput_kbps": {cc: cells[cc]["goodput_kbps"] for cc in STRATEGIES},
        "deterministic": deterministic,
    }
