"""TCP congestion-control benchmark: Tahoe vs Reno vs CUBIC.

Runs one x6 sweep cell per strategy — the hard one: Gilbert-Elliott
bursty loss plus a mid-stream Ethernet-to-radio handoff — and reports
application goodput, retransmission work, and wall time side by side.
Each cell is then re-run with the same seed and compared field-by-field:
any divergence means a strategy consumed nondeterministic state (the
repository's cardinal sin), and the benchmark reports
``deterministic: false`` so the CLI can fail the run.

A second stage exercises RFC 9293 flow control: one x9 grid cell — a
receiver-limited windowed transfer whose application drains at half the
offered load — is run twice with the same seed.  The gate requires the
rerun to be field-identical, the transfer to move data, and the sender
to have measurably stalled on the closed window; in the full (non-quick)
run the cell includes interface flaps, so persist probes must also have
fired (a lost window update must be survivable, not merely unlikely).

Speed numbers are informational; determinism is the contract.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.experiments.exp_tcp_cc import run_tcp_cc_trial
from repro.experiments.exp_tcp_chaos import run_tcp_chaos_trial
from repro.sim.units import ms

#: The strategies under comparison, in report order.
STRATEGIES = ("tahoe", "reno", "cubic")
#: The seed matches x6's default base so numbers line up with the report.
SEED = 113
#: The windowed cell replicates x9's (loss 0, flap 7 s) cell exactly:
#: seed = x9 base 131 + cell index 1.
WINDOWED_SEED = 132


def run_tcp_bench(quick: bool = False) -> dict:
    """Benchmark every strategy on the lossy-handoff cell; verify determinism.

    ``quick`` drops the loss phase and the handoff (CI smoke runs), which
    shortens the simulated recovery tail without changing the shape of
    the output document.
    """
    loss_rate = 0.0 if quick else 0.25
    handoff = not quick
    cells: Dict[str, dict] = {}
    deterministic = True
    for cc in STRATEGIES:
        started = time.perf_counter()
        outcome = run_tcp_cc_trial(cc, loss_rate=loss_rate, handoff=handoff,
                                   seed=SEED)
        wall_s = time.perf_counter() - started
        rerun = run_tcp_cc_trial(cc, loss_rate=loss_rate, handoff=handoff,
                                 seed=SEED)
        identical = outcome == rerun
        deterministic = deterministic and identical
        cells[cc] = dict(outcome, wall_s=round(wall_s, 4),
                         rerun_identical=identical)
    return {
        "quick": quick,
        "loss_rate": loss_rate,
        "handoff": handoff,
        "seed": SEED,
        "cells": cells,
        "goodput_kbps": {cc: cells[cc]["goodput_kbps"] for cc in STRATEGIES},
        "deterministic": deterministic,
        "windowed": run_windowed_bench(quick=quick),
    }


def run_windowed_bench(quick: bool = False) -> dict:
    """One x9 cell under flow control; verify determinism and the stall.

    ``quick`` drops the interface flaps (and with them the persist-probe
    requirement — with a clean path the window updates always arrive);
    the full run keeps the 7-second flap cadence that forces probing.
    """
    flap_ms = 0.0 if quick else 7000.0
    started = time.perf_counter()
    outcome = run_tcp_chaos_trial(0.0, flap_period_ns=ms(flap_ms),
                                  seed=WINDOWED_SEED)
    wall_s = time.perf_counter() - started
    rerun = run_tcp_chaos_trial(0.0, flap_period_ns=ms(flap_ms),
                                seed=WINDOWED_SEED)
    identical = outcome == rerun
    passed = (identical
              and outcome["goodput_kbps"] > 0
              and outcome["zero_window_ms"] > 0
              and (quick or outcome["persist_probes"] > 0))
    return {
        "quick": quick,
        "flap_period_ms": flap_ms,
        "seed": WINDOWED_SEED,
        "cell": dict(outcome, wall_s=round(wall_s, 4),
                     rerun_identical=identical),
        "passed": passed,
    }
