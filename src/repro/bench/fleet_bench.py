"""Fleet-scale benchmark: aggregate-model throughput at 10^5 hosts.

The x7 experiment's promise is that a 10^5-host fleet is cheap: one
:class:`~repro.workloads.aggregate.AggregateHostModel` pass over the
hosts, no per-registration events.  This bench times exactly that — the
default x7 row at 100,000 hosts on a 4-replica consistent-hash plane —
and reports **registrations processed per wall-clock second**, the
number that collapses if someone reintroduces per-host object graphs or
per-arrival event scheduling.

Gating is two-fold, mirroring the other bench stages:

* the throughput must clear a conservative floor
  (:data:`MIN_REGS_PER_SEC`; ~9x headroom on the reference machine), and
* a same-seed rerun must produce a byte-identical report.

Absolute wall seconds stay advisory; the floor and the identity are the
contract.
"""

from __future__ import annotations

import time

from repro.experiments.exp_fleet_scale import run_fleet_scale_experiment

#: Hosts in the measured fleet (the x7 10^5 row).
FLEET_HOSTS = 100_000
#: Quick-mode fleet for CI smoke runs.
QUICK_FLEET_HOSTS = 20_000
#: Gating floor: registrations processed per wall-clock second.  The
#: reference run clears ~90k/s; an order of magnitude of headroom keeps
#: slow CI runners from flaking while still catching a return to
#: per-host simulation (which runs ~100x slower).
MIN_REGS_PER_SEC = 10_000.0


def run_fleet_bench(quick: bool = False,
                    min_regs_per_sec: float = MIN_REGS_PER_SEC) -> dict:
    """Time the aggregate fleet row; check the floor and rerun identity."""
    fleet = QUICK_FLEET_HOSTS if quick else FLEET_HOSTS

    start = time.perf_counter()
    report = run_fleet_scale_experiment(fleet_sizes=(fleet,),
                                        failover_fleet=None)
    wall_s = time.perf_counter() - start
    rendered = report.format_report()

    rerun = run_fleet_scale_experiment(fleet_sizes=(fleet,),
                                       failover_fleet=None).format_report()

    point = report.points[0]
    regs_per_sec = point.registrations / wall_s if wall_s > 0 else 0.0
    return {
        "fleet_hosts": fleet,
        "agents": point.agents,
        "registrations": point.registrations,
        "handoffs": point.handoffs,
        "p99_ms": point.p99_ms,
        "wall_s": wall_s,
        "regs_per_sec": regs_per_sec,
        "min_regs_per_sec": min_regs_per_sec,
        "meets_floor": regs_per_sec >= min_regs_per_sec,
        "rerun_identical": rendered == rerun,
        "quick": quick,
    }
