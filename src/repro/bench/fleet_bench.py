"""Fleet-scale benchmark: aggregate-model throughput at 10^5 hosts.

The x7 experiment's promise is that a 10^5-host fleet is cheap: one
:class:`~repro.workloads.aggregate.AggregateHostModel` pass over the
hosts, no per-registration events.  This bench times exactly that — the
default x7 row at 100,000 hosts on a 4-replica consistent-hash plane —
and reports **registrations processed per wall-clock second**, the
number that collapses if someone reintroduces per-host object graphs or
per-arrival event scheduling.

Gating is two-fold, mirroring the other bench stages:

* the throughput must clear a conservative floor
  (:data:`MIN_REGS_PER_SEC`; ~9x headroom on the reference machine), and
* a same-seed rerun must produce a byte-identical report.

Absolute wall seconds stay advisory; the floor and the identity are the
contract.
"""

from __future__ import annotations

import time

from repro.experiments.exp_fleet_scale import run_fleet_scale_experiment
from repro.experiments.exp_plane_chaos import run_plane_chaos_trial

#: Hosts in the measured fleet (the x7 10^5 row).
FLEET_HOSTS = 100_000
#: Quick-mode fleet for CI smoke runs.
QUICK_FLEET_HOSTS = 20_000
#: Gating floor: registrations processed per wall-clock second.  The
#: reference run clears ~90k/s; an order of magnitude of headroom keeps
#: slow CI runners from flaking while still catching a return to
#: per-host simulation (which runs ~100x slower).
MIN_REGS_PER_SEC = 10_000.0

#: Hosts in the audited-churn stage (one full-chaos x8 shard: join,
#: drain, partition and crash under live per-event registration load,
#: gated by the plane invariant auditor).
CHURN_HOSTS = 250
QUICK_CHURN_HOSTS = 100
#: Gating floor for the audited-churn stage, in *real* registration
#: exchanges per wall-clock second.  The reference run clears ~900/s at
#: 10^3 hosts; ~9x headroom absorbs slow runners while still catching a
#: regression to O(ports) per-packet scans on the hub router.
MIN_CHURN_REGS_PER_SEC = 100.0


def run_fleet_bench(quick: bool = False,
                    min_regs_per_sec: float = MIN_REGS_PER_SEC) -> dict:
    """Time the aggregate fleet row; check the floor and rerun identity."""
    fleet = QUICK_FLEET_HOSTS if quick else FLEET_HOSTS

    start = time.perf_counter()
    report = run_fleet_scale_experiment(fleet_sizes=(fleet,),
                                        failover_fleet=None)
    wall_s = time.perf_counter() - start
    rendered = report.format_report()

    rerun = run_fleet_scale_experiment(fleet_sizes=(fleet,),
                                       failover_fleet=None).format_report()

    point = report.points[0]
    regs_per_sec = point.registrations / wall_s if wall_s > 0 else 0.0
    churn = run_audited_churn_stage(quick=quick)
    return {
        "audited_churn": churn,
        "fleet_hosts": fleet,
        "agents": point.agents,
        "registrations": point.registrations,
        "handoffs": point.handoffs,
        "p99_ms": point.p99_ms,
        "wall_s": wall_s,
        "regs_per_sec": regs_per_sec,
        "min_regs_per_sec": min_regs_per_sec,
        "meets_floor": regs_per_sec >= min_regs_per_sec,
        "rerun_identical": rendered == rerun,
        "quick": quick,
    }


def run_audited_churn_stage(quick: bool = False,
                            min_regs_per_sec: float = MIN_CHURN_REGS_PER_SEC
                            ) -> dict:
    """Time one full-chaos x8 shard under the plane invariant auditor.

    This is the per-event counterweight to the aggregate row above: real
    :class:`~repro.core.registration.RegistrationClient` traffic against
    a replica plane taking a join, a drain, a partition and a crash.
    The stage gates on zero :class:`~repro.faults.auditor.AuditViolation`
    findings (the trial raises otherwise), a same-seed byte-identical
    rerun, and an exchanges-per-second floor.
    """
    hosts = QUICK_CHURN_HOSTS if quick else CHURN_HOSTS

    def cell() -> dict:
        return run_plane_chaos_trial(fleet_size=hosts, n_hosts=hosts,
                                     host_offset=0, churn=True,
                                     partition=True, seed=71)

    start = time.perf_counter()
    result = cell()
    wall_s = time.perf_counter() - start
    rerun = cell()

    regs_per_sec = result["accepted"] / wall_s if wall_s > 0 else 0.0
    return {
        "hosts": hosts,
        "registrations": result["accepted"],
        "takeovers": result["takeovers"],
        "stale_served": result["stale_served"],
        "faults_injected": result["faults_injected"],
        "violations": result["violations"],
        "wall_s": wall_s,
        "regs_per_sec": regs_per_sec,
        "min_regs_per_sec": min_regs_per_sec,
        "meets_floor": regs_per_sec >= min_regs_per_sec,
        "rerun_identical": result == rerun,
        "quick": quick,
    }
