"""Same-seed determinism guard for the fast path.

An optimisation that changes *results* is a bug wearing a speedup's
clothes.  This guard re-runs one seeded scenario under every fast-path
configuration — event/packet pooling on and off, caches on and off, heap
and timer-wheel scheduler — and asserts the metric snapshots serialize
byte-identically once the documented cache-diagnostic counters are
stripped.

The stripped keys are exactly the ``policy/lookup_cache`` counters: they
exist *because* the cache does, so they legitimately differ when the cache
is disabled.  Everything else — packet counts, handoff latencies, dispatch
totals, queue depths — must not move by a single byte.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.bench.datapath_bench import run_scenario

#: Snapshot-key prefix of the cache diagnostics the guard ignores.
CACHE_METRIC_PREFIX = "policy/lookup_cache"

#: (name, scheduler, policy_cache_size, route_cache_size, pooling) per
#: configuration: the full pooled/unpooled x heap/wheel x caches-on/off cube.
GUARD_CONFIGS = [
    ("pooled-caches-heap", "heap", 128, 256, True),
    ("pooled-caches-wheel", "wheel", 128, 256, True),
    ("pooled-nocache-heap", "heap", 0, 0, True),
    ("pooled-nocache-wheel", "wheel", 0, 0, True),
    ("unpooled-caches-heap", "heap", 128, 256, False),
    ("unpooled-caches-wheel", "wheel", 128, 256, False),
    ("unpooled-nocache-heap", "heap", 0, 0, False),
    ("unpooled-nocache-wheel", "wheel", 0, 0, False),
]


def strip_cache_metrics(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Drop the cache-diagnostic counters from a metrics snapshot."""
    return {key: value for key, value in snapshot.items()
            if not key.startswith(CACHE_METRIC_PREFIX)}


def canonical_json(snapshot: Dict[str, object]) -> str:
    """Byte-stable serialization used for the identity comparison."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def run_determinism_guard(seed: int = 0) -> Dict[str, object]:
    """Run the scenario under every configuration; returns the verdict doc.

    ``passed`` is True iff every configuration's stripped snapshot is
    byte-identical to the reference (fast path fully on, heap scheduler).
    """
    runs: List[Dict[str, object]] = []
    reference_json = None
    for name, scheduler, policy_cache, route_cache, pooling in GUARD_CONFIGS:
        sim = run_scenario(seed=seed, scheduler=scheduler,
                           policy_cache=policy_cache,
                           route_cache=route_cache,
                           pooling=pooling)
        snapshot = strip_cache_metrics(sim.metrics.snapshot())
        blob = canonical_json(snapshot)
        if reference_json is None:
            reference_json = blob
        runs.append({
            "config": name,
            "scheduler": scheduler,
            "policy_cache_size": policy_cache,
            "route_cache_size": route_cache,
            "pooling": pooling,
            "snapshot_bytes": len(blob),
            "matches_reference": blob == reference_json,
            "events_run": sim.events_run,
        })
    passed = all(run["matches_reference"] for run in runs)
    return {
        "guard": "same-seed-snapshot-identity",
        "seed": seed,
        "reference_config": GUARD_CONFIGS[0][0],
        "stripped_prefix": CACHE_METRIC_PREFIX,
        "passed": passed,
        "runs": runs,
    }
