"""Faithful replicas of the pre-fast-path engine and packet classes.

The acceptance bar for the fast path is a speedup measured *in the same
run* against what the code used to do, not against a number someone wrote
down once.  This module therefore preserves the old implementations —
dataclass events on a raw ``heapq`` with per-event pops, frozen-dataclass
packets — in benchmark-only form.  They are replicas of the engine as of
the observability PR (see ``git log``), kept behaviorally identical so the
ratio reported by ``python -m repro.bench`` means what it claims.

Nothing outside :mod:`repro.bench` may import this module.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.net.addressing import IPAddress
from repro.net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES
from repro.obs.metrics import Counter, MetricsRegistry

Time = int


@dataclass(order=True)
class BaselineEvent:
    """The old ``Event``: an order-generated dataclass."""

    time: Time
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _owner: Optional["BaselineSimulator"] = field(compare=False, default=None,
                                                  repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class BaselineSimulator:
    """The old engine loop: raw heapq, one pop per event, no batching.

    Only the scheduling/dispatch machinery is replicated (that is what the
    engine benchmark exercises); tracing and RNG streams are omitted
    because the benchmark workload uses neither.
    """

    def __init__(self) -> None:
        self._now: Time = 0
        self._seq = 0
        self._queue: List[BaselineEvent] = []
        self.metrics = MetricsRegistry()
        self._events_run = 0
        self._cancelled_in_queue = 0
        self._queue_depth_gauge = self.metrics.gauge("engine",
                                                     "queue_depth_max")
        self._dispatch_counters: Dict[str, Counter] = {}

    @property
    def now(self) -> Time:
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    def call_at(self, when: Time, callback: Callable[[], None],
                label: str = "") -> BaselineEvent:
        event = BaselineEvent(time=when, seq=self._seq, callback=callback,
                              label=label)
        event._owner = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._queue_depth_gauge.set_max(
            len(self._queue) - self._cancelled_in_queue)
        return event

    def call_later(self, delay: Time, callback: Callable[[], None],
                   label: str = "") -> BaselineEvent:
        return self.call_at(self._now + delay, callback, label)

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1

    def _count_dispatch(self, label: str) -> None:
        counter = self._dispatch_counters.get(label)
        if counter is None:
            counter = self.metrics.counter("engine", "dispatched",
                                           label=label or "unlabeled")
            self._dispatch_counters[label] = counter
        counter.value += 1

    def run(self, until: Optional[Time] = None) -> None:
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_in_queue -= 1
                event._owner = None
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            event._owner = None
            self._now = event.time
            self._events_run += 1
            self._count_dispatch(event.label)
            event.callback()
        if until is not None and self._now < until:
            self._now = until


# --------------------------------------------------------- baseline packets

@dataclass(frozen=True)
class BaselineAppData:
    """The old frozen-dataclass ``AppData``."""

    content: object = None
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("payload size cannot be negative")


@dataclass(frozen=True)
class BaselineUDPDatagram:
    """The old frozen-dataclass ``UDPDatagram``."""

    src_port: int
    dst_port: int
    payload: BaselineAppData = field(default_factory=BaselineAppData)

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad UDP port {port}")

    @property
    def size_bytes(self) -> int:
        return UDP_HEADER_BYTES + self.payload.size_bytes


@dataclass(frozen=True)
class BaselineIPPacket:
    """The old frozen-dataclass ``IPPacket`` (ident supplied by caller)."""

    src: IPAddress
    dst: IPAddress
    protocol: int
    payload: object
    ttl: int = 64
    ident: int = 0

    @property
    def size_bytes(self) -> int:
        return IP_HEADER_BYTES + self.payload.size_bytes  # type: ignore[attr-defined]

    def decremented(self) -> "BaselineIPPacket":
        return replace(self, ttl=self.ttl - 1)
