"""Datapath microbenchmarks: packets, lookup caches, trace gating, scenario.

Four measurements, each deterministic in *what* it does (wall time is the
only non-reproducible output):

* packet construction — slotted classes vs the old frozen dataclasses;
* Mobile Policy Table lookups — result cache on vs off, with hit rates;
* routing-table LPM lookups — result cache on vs off, with hit rates;
* trace emission — an enabled category vs a gated-off one;

plus one macro measurement: regenerating a full testbed scenario (build,
traffic, a mid-run handoff) end to end, which is what a user actually
waits for when re-running an experiment.
"""

from __future__ import annotations

import time as _wallclock
from typing import Dict

from repro.bench.baseline import (
    BaselineAppData,
    BaselineIPPacket,
    BaselineUDPDatagram,
)
from repro.config import DEFAULT_CONFIG
from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.net.addressing import IPAddress, Subnet
from repro.net.packet import PROTO_UDP, AppData, IPPacket, UDPDatagram, release
from repro.net.routing import RouteEntry, RoutingTable
from repro.sim.engine import Simulator
from repro.sim.units import ms, s
from repro.testbed.topology import build_testbed
from repro.workloads.udp_echo import UdpEchoResponder, UdpEchoStream


def _time_ns(fn, *args) -> int:
    start = _wallclock.perf_counter_ns()
    fn(*args)
    return _wallclock.perf_counter_ns() - start


# ----------------------------------------------------- packet construction

def _build_packets_current(n: int, src: IPAddress, dst: IPAddress) -> None:
    for i in range(n):
        payload = AppData(content=i, size_bytes=512)
        datagram = UDPDatagram(src_port=7, dst_port=7, payload=payload)
        IPPacket(src=src, dst=dst, protocol=PROTO_UDP, payload=datagram,
                 ident=i).decremented()


def _build_packets_pooled(n: int, src: IPAddress, dst: IPAddress) -> None:
    """The arena-backed cycle: acquire, use, release (the datapath's life)."""
    for i in range(n):
        payload = AppData.acquire(i, 512)
        datagram = UDPDatagram.acquire(7, 7, payload)
        packet = IPPacket.acquire(src, dst, PROTO_UDP, datagram, ident=i)
        copy = packet.decremented()
        release(copy, held=1)
        release(packet, held=1)
        release(datagram, held=1)
        release(payload, held=1)


def _build_packets_baseline(n: int, src: IPAddress, dst: IPAddress) -> None:
    for i in range(n):
        payload = BaselineAppData(content=i, size_bytes=512)
        datagram = BaselineUDPDatagram(src_port=7, dst_port=7,
                                       payload=payload)
        BaselineIPPacket(src=src, dst=dst, protocol=PROTO_UDP,
                         payload=datagram, ident=i).decremented()


def _packet_bench(n: int) -> Dict[str, object]:
    src = IPAddress.parse("36.135.0.10")
    dst = IPAddress.parse("36.8.0.20")
    _build_packets_baseline(2_000, src, dst)   # warm-up
    _build_packets_current(2_000, src, dst)
    _build_packets_pooled(2_000, src, dst)
    baseline_ns = _time_ns(_build_packets_baseline, n, src, dst)
    current_ns = _time_ns(_build_packets_current, n, src, dst)
    pooled_ns = _time_ns(_build_packets_pooled, n, src, dst)
    return {
        "n_packets": n,
        "baseline_ns_per_packet": baseline_ns / n,
        "current_ns_per_packet": current_ns / n,
        "pooled_ns_per_packet": pooled_ns / n,
        "speedup": baseline_ns / current_ns,
        "pooled_speedup": baseline_ns / pooled_ns,
    }


# --------------------------------------------------------- policy lookups

def _policy_table(cache_size: int) -> MobilePolicyTable:
    table = MobilePolicyTable(default_mode=RoutingMode.TUNNEL,
                              cache_size=cache_size)
    table.set_policy(Subnet(IPAddress.parse("36.8.0.0"), 24),
                     RoutingMode.LOCAL)
    table.set_policy(Subnet(IPAddress.parse("36.40.0.0"), 24),
                     RoutingMode.TRIANGLE)
    table.set_policy(Subnet(IPAddress.parse("36.0.0.0"), 8),
                     RoutingMode.ENCAP_DIRECT)
    for host in range(8):
        table.set_policy(IPAddress.parse(f"36.8.0.{100 + host}"),
                         RoutingMode.TUNNEL, origin="probe")
    return table

#: Distinct destinations the lookup loop cycles through (a mobile host
#: talks to a handful of correspondents, not the whole Internet).
POLICY_DESTINATIONS = 32


def _policy_bench(n: int) -> Dict[str, object]:
    destinations = [IPAddress.parse(f"36.8.0.{20 + i}")
                    for i in range(POLICY_DESTINATIONS)]

    def run(table: MobilePolicyTable) -> None:
        for i in range(n):
            table.lookup(destinations[i % POLICY_DESTINATIONS])

    cached, uncached = _policy_table(128), _policy_table(0)
    run(_policy_table(128))                    # warm-up
    cached_ns = _time_ns(run, cached)
    uncached_ns = _time_ns(run, uncached)
    hits = cached._cache_hit_counter.value
    misses = cached._cache_miss_counter.value
    return {
        "n_lookups": n,
        "distinct_destinations": POLICY_DESTINATIONS,
        "cached_ns_per_lookup": cached_ns / n,
        "uncached_ns_per_lookup": uncached_ns / n,
        "speedup": uncached_ns / cached_ns,
        "cache_hit_rate": hits / (hits + misses),
    }


# -------------------------------------------------------- routing lookups

class _BenchInterface:
    """The minimal interface surface RoutingTable touches."""

    is_up = True

    def __init__(self, name: str) -> None:
        self.name = name


def _routing_table(cache_size: int) -> RoutingTable:
    table = RoutingTable(cache_size=cache_size)
    eth = _BenchInterface("bench-eth0")
    radio = _BenchInterface("bench-strip0")
    table.add(RouteEntry(destination=Subnet(IPAddress.parse("36.8.0.0"), 24),
                         interface=eth))
    table.add(RouteEntry(destination=Subnet(IPAddress.parse("36.135.0.0"), 24),
                         interface=eth))
    table.add(RouteEntry(destination=Subnet(IPAddress.parse("36.134.0.0"), 24),
                         interface=radio))
    for host in range(8):
        table.add_host_route(IPAddress.parse(f"36.8.0.{100 + host}"), eth)
    table.add_default(eth, gateway=IPAddress.parse("36.8.0.1"))
    return table


def _routing_bench(n: int) -> Dict[str, object]:
    destinations = [IPAddress.parse(f"36.8.0.{20 + i}")
                    for i in range(POLICY_DESTINATIONS)]

    def run(table: RoutingTable) -> None:
        for i in range(n):
            table.lookup(destinations[i % POLICY_DESTINATIONS])

    cached, uncached = _routing_table(256), _routing_table(0)
    run(_routing_table(256))                   # warm-up
    cached_ns = _time_ns(run, cached)
    uncached_ns = _time_ns(run, uncached)
    info = cached.cache_info()
    return {
        "n_lookups": n,
        "distinct_destinations": POLICY_DESTINATIONS,
        "cached_ns_per_lookup": cached_ns / n,
        "uncached_ns_per_lookup": uncached_ns / n,
        "speedup": uncached_ns / cached_ns,
        "cache_hit_rate": info["hits"] / (info["hits"] + info["misses"]),
    }


# ----------------------------------------------------------- trace gating

def _trace_bench(n: int) -> Dict[str, object]:
    sim = Simulator(seed=0)
    trace = sim.trace
    packet = IPPacket(src=IPAddress.parse("36.135.0.10"),
                      dst=IPAddress.parse("36.8.0.20"),
                      protocol=PROTO_UDP,
                      payload=UDPDatagram(7, 7, AppData(None, 512)))

    def emit_enabled() -> None:
        for _ in range(n):
            if trace.wants("ip"):
                trace.emit("ip", "send", host="bench",
                           packet=packet.describe())

    def emit_gated() -> None:
        for _ in range(n):
            # "policy.cache" is in VERBOSE_CATEGORIES: off by default.
            if trace.wants("policy.cache"):
                trace.emit("policy.cache", "hit", host="bench",
                           packet=packet.describe())

    enabled_ns = _time_ns(emit_enabled)
    trace.clear()
    gated_ns = _time_ns(emit_gated)
    return {
        "n_emits": n,
        "enabled_ns_per_emit": enabled_ns / n,
        "gated_ns_per_emit": gated_ns / n,
        "speedup_when_gated": enabled_ns / gated_ns,
    }


# ------------------------------------------------- scenario regeneration

def run_scenario(seed: int = 0, scheduler: str = "heap",
                 policy_cache: int = 128, route_cache: int = 256,
                 pooling: bool = True, duration_ns: int = s(6)) -> Simulator:
    """The standard benchmark/guard scenario, returned for inspection.

    Figure-5 testbed, a 20 ms UDP echo stream from the mobile host to the
    department correspondent, and a mid-run handoff to the department net
    (so policy/route cache invalidation runs under load).  Deterministic
    for a given (seed, duration); the fast-path knobs must not change any
    metric other than the documented cache diagnostics.
    """
    config = DEFAULT_CONFIG.with_overrides(
        engine_scheduler=scheduler,
        policy_cache_size=policy_cache,
        route_cache_size=route_cache,
        engine_pooling=pooling,
    )
    sim = Simulator(seed=seed, scheduler=scheduler, pooling=pooling)
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    UdpEchoResponder(testbed.correspondent)
    stream = UdpEchoStream(testbed.mobile, testbed.addresses.ch_dept,
                           interval=ms(20))
    stream.start()
    sim.call_later(s(2), lambda: testbed.visit_dept(), label="bench-handoff")
    sim.run(until=duration_ns)
    stream.stop()
    return sim


def _scenario_bench(quick: bool) -> Dict[str, object]:
    duration = s(3) if quick else s(6)
    wall_start = _wallclock.perf_counter_ns()
    sim = run_scenario(seed=0, duration_ns=duration)
    wall_ns = _wallclock.perf_counter_ns() - wall_start
    profile = sim.profile()
    return {
        "duration_sim_ns": duration,
        "wall_ns": wall_ns,
        "events_run": profile["events_run"],
        "events_per_sec": profile["events_run"] * 1e9 / wall_ns,
        "scheduler": profile["scheduler"],
    }


def run_datapath_bench(quick: bool = False) -> Dict[str, object]:
    """Run every datapath benchmark; returns the BENCH_datapath doc."""
    n = 20_000 if quick else 100_000
    return {
        "bench": "datapath",
        "quick": quick,
        "packet_construction": _packet_bench(n),
        "policy_lookup": _policy_bench(n),
        "routing_lookup": _routing_bench(n),
        "trace_emit": _trace_bench(n // 4),
        "scenario_regeneration": _scenario_bench(quick),
    }
