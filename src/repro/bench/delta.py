"""Compare freshly generated BENCH_*.json files against committed ones.

CI runs the benchmarks, then invokes this module to diff the new numbers
against the BENCH files committed at the repository root and uploads the
result as an artifact.  The delta is *advisory by design*: absolute wall
times vary across runner generations, so regressions are gated via the
in-process speedup ratio (``python -m repro.bench --min-speedup``) and the
byte-identity guard, never via this report.  Exit status is non-zero only
when an input file is missing/unreadable or the report cannot be written.

Usage::

    python -m repro.bench.delta --old . --new bench-results \
        --out bench-results/BENCH_delta.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: The benchmark documents a full ``python -m repro.bench`` run writes.
BENCH_FILES = (
    "BENCH_engine.json",
    "BENCH_datapath.json",
    "BENCH_tcp.json",
    "BENCH_parallel.json",
    "BENCH_fleet.json",
)


def _numeric_leaves(doc: object, prefix: str = "") -> Dict[str, float]:
    """Flatten every numeric leaf of a JSON document to ``a.b.c`` paths."""
    out: Dict[str, float] = {}
    if isinstance(doc, bool):
        return out
    if isinstance(doc, (int, float)):
        out[prefix] = float(doc)
        return out
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, path))
    elif isinstance(doc, list):
        for index, value in enumerate(doc):
            path = f"{prefix}[{index}]"
            out.update(_numeric_leaves(value, path))
    return out


def compare_docs(old: object, new: object) -> List[Dict[str, object]]:
    """Per-leaf deltas between two BENCH documents, sorted by path."""
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    rows: List[Dict[str, object]] = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        before = old_leaves.get(path)
        after = new_leaves.get(path)
        row: Dict[str, object] = {"path": path, "old": before, "new": after}
        if before is not None and after is not None and before != 0:
            row["ratio"] = after / before
        rows.append(row)
    return rows


def _load(path: Path) -> Tuple[Optional[object], Optional[str]]:
    try:
        return json.loads(path.read_text()), None
    except OSError as exc:
        return None, f"unreadable: {exc}"
    except ValueError as exc:
        return None, f"invalid JSON: {exc}"


def build_delta(old_dir: Path, new_dir: Path) -> Tuple[Dict[str, object], List[str]]:
    """The full delta document plus a list of hard errors."""
    report: Dict[str, object] = {"old_dir": str(old_dir),
                                 "new_dir": str(new_dir),
                                 "benches": {}}
    errors: List[str] = []
    for name in BENCH_FILES:
        old_doc, old_err = _load(old_dir / name)
        new_doc, new_err = _load(new_dir / name)
        if old_err:
            errors.append(f"{old_dir / name}: {old_err}")
        if new_err:
            errors.append(f"{new_dir / name}: {new_err}")
        if old_doc is None or new_doc is None:
            continue
        report["benches"][name] = compare_docs(old_doc, new_doc)  # type: ignore[index]
    return report, errors


#: Headline ratios summarized on stdout (path, label, higher-is-better).
_HEADLINES = (
    ("BENCH_engine.json", "speedup_vs_baseline.best", "engine best speedup"),
    ("BENCH_datapath.json", "packet_construction.pooled_speedup",
     "pooled packet build"),
    ("BENCH_datapath.json", "scenario_regeneration.events_per_sec",
     "scenario events/sec"),
    ("BENCH_parallel.json", "total.speedup", "parallel total speedup"),
    ("BENCH_fleet.json", "regs_per_sec", "fleet regs/sec"),
    ("BENCH_fleet.json", "audited_churn.regs_per_sec",
     "audited churn regs/sec"),
)


def _print_summary(report: Dict[str, object]) -> None:
    benches = report["benches"]
    for file_name, path, label in _HEADLINES:
        rows = benches.get(file_name)  # type: ignore[union-attr]
        if not rows:
            continue
        for row in rows:
            if row["path"] == path and row.get("ratio") is not None:
                print(f"{label:<24} {row['old']:>12.2f} -> {row['new']:>12.2f}"
                      f"  ({row['ratio']:.2f}x of committed)")
                break


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.delta",
        description=__doc__.splitlines()[0])
    parser.add_argument("--old", type=Path, default=Path("."),
                        help="directory with the committed BENCH files "
                             "(default: cwd)")
    parser.add_argument("--new", type=Path, required=True,
                        help="directory with freshly generated BENCH files")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the delta report JSON here")
    args = parser.parse_args(argv)

    report, errors = build_delta(args.old, args.new)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return 1
    _print_summary(report)
    if args.out is not None:
        try:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n")
        except OSError as exc:
            print(f"error: failed to write delta report {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
